#include "serve/server.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "sfq/simulator.hh"

namespace sushi::serve {

namespace {

/** Cap real-mode condition waits: a periodic wake is harmless and
 *  keeps kNoDeadline arithmetic away from time_point overflow. */
constexpr std::int64_t kMaxWaitNs = 1'000'000'000;

/** "No candidate" sentinel for event-time minima. */
constexpr std::int64_t kNever = INT64_MAX;

/** Domain separator of the retry-jitter keyed draws. */
constexpr std::uint64_t kRetryJitterKey = 0x52e7b1a9f36d04c5ULL;

/** The engine pool is the active target plus the hot spares. */
engine::EngineConfig
poolConfig(const ServerConfig &cfg)
{
    engine::EngineConfig ec = cfg.engine;
    int active = ec.replicas;
    if (active <= 0)
        active = static_cast<int>(parallelWorkers());
    ec.replicas = active + std::max(0, cfg.hot_spares);
    return ec;
}

} // namespace

const char *
rejectName(Reject r)
{
    switch (r) {
      case Reject::None: return "none";
      case Reject::QueueFull: return "queue_full";
      case Reject::DeadlineExceeded: return "deadline_exceeded";
      case Reject::ShuttingDown: return "shutting_down";
      case Reject::BreakerOpen: return "breaker_open";
      case Reject::ReplicaFailure: return "replica_failure";
    }
    return "?";
}

Server::Server(std::shared_ptr<const engine::CompiledModel> model,
               const ServerConfig &cfg)
    : model_(std::move(model)),
      cfg_(cfg),
      engine_(model_, poolConfig(cfg)),
      chaos_(cfg.chaos, engine_.replicas()),
      epoch_(std::chrono::steady_clock::now())
{
    sushi_assert(cfg_.max_batch >= 1);
    sushi_assert(cfg_.max_queue >= 1);
    sushi_assert(cfg_.max_delay_ns >= 0);
    sushi_assert(cfg_.hot_spares >= 0);
    target_active_ =
        engine_.replicas() - std::max(0, cfg_.hot_spares);
    sushi_assert(target_active_ >= 1);
    const int nshards = cfg_.admission_shards > 0
                            ? cfg_.admission_shards
                            : engine_.replicas();
    shards_.reserve(static_cast<std::size_t>(nshards));
    for (int s = 0; s < nshards; ++s)
        shards_.push_back(std::make_unique<Shard>());
    health_.resize(static_cast<std::size_t>(engine_.replicas()));
    metrics_.replicas.resize(
        static_cast<std::size_t>(engine_.replicas()));
    for (int r = target_active_; r < engine_.replicas(); ++r) {
        health_[static_cast<std::size_t>(r)].state =
            ReplicaState::Spare;
        metrics_.replicas[static_cast<std::size_t>(r)].state =
            ReplicaState::Spare;
    }
    if (cfg_.clock == ClockMode::Real) {
        workers_.reserve(metrics_.replicas.size());
        for (int r = 0; r < engine_.replicas(); ++r)
            workers_.emplace_back([this, r] { workerMain(r); });
    }
}

Server::~Server()
{
    shutdown();
}

std::int64_t
Server::realNow() const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::int64_t
Server::now() const
{
    if (cfg_.clock == ClockMode::Virtual) {
        std::lock_guard<std::mutex> lock(mu_);
        return virtual_now_;
    }
    return realNow();
}

ReplicaState
Server::replicaState(int r) const
{
    sushi_assert(r >= 0 && r < engine_.replicas());
    std::lock_guard<std::mutex> lock(mu_);
    return health_[static_cast<std::size_t>(r)].state;
}

BreakerState
Server::breakerState() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return breaker_.state;
}

PendingReq
Server::makeRequest(engine::Sample &&sample,
                    const RequestOptions &opts, std::int64_t t)
{
    PendingReq req;
    req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    req.request_id = req.id;
    req.priority = opts.priority;
    req.submit_ns = t;
    req.queued_ns = t;
    req.deadline_ns = opts.deadline_ns;
    req.sample =
        std::make_shared<const engine::Sample>(std::move(sample));
    req.state = std::make_shared<ReqState>();
    return req;
}

std::future<Response>
Server::submit(engine::Sample sample, const RequestOptions &opts)
{
    if (cfg_.clock == ClockMode::Virtual) {
        std::lock_guard<std::mutex> lock(mu_);
        // Defer admission to runVirtual() at the current instant.
        return submitAtLocked(virtual_now_, std::move(sample), opts);
    }

    const std::int64_t t = realNow();
    PendingReq req = makeRequest(std::move(sample), opts, t);
    auto fut = req.state->promise.get_future();

    // Breaker state is central (it aggregates outcomes from every
    // replica), so a breaker-enabled server pays for mu_ here. With
    // the breaker off — the default — the fast path below touches
    // only the owning shard.
    std::unique_lock<std::mutex> global;
    if (cfg_.breaker.enabled()) {
        global = std::unique_lock<std::mutex>(mu_);
        breakerAdvanceLocked(t);
    }

    Shard &sh = shardOf(req.request_id);
    std::unique_lock<std::mutex> slock(sh.mu);
    ++sh.delta.submitted;
    if (draining_.load() || stop_.load()) {
        fulfillRejectLocked(sh, req, Reject::ShuttingDown, t);
        return fut;
    }
    if (req.deadline_ns <= t) {
        fulfillRejectLocked(sh, req, Reject::DeadlineExceeded, t);
        return fut;
    }
    if (cfg_.breaker.enabled() &&
        breaker_.state == BreakerState::Open) {
        fulfillRejectLocked(sh, req, Reject::BreakerOpen, t);
        return fut;
    }
    // Shed this shard's expired entries (their retry/hedge timers
    // are reaped lazily — firing a timer of a resolved request is a
    // no-op); the global sweep happens on the worker side.
    shedShardLocked(sh, t, /*reap=*/false);
    if (!tryReserveQueueSlot()) {
        fulfillRejectLocked(sh, req, Reject::QueueFull, t);
        return fut;
    }
    admitShardLocked(sh, std::move(req), t);
    slock.unlock();
    if (global.owns_lock())
        global.unlock();
    wakeWorkers();
    return fut;
}

std::future<Response>
Server::submitAt(std::int64_t arrival_ns, engine::Sample sample,
                 const RequestOptions &opts)
{
    sushi_assert(cfg_.clock == ClockMode::Virtual);
    std::lock_guard<std::mutex> lock(mu_);
    return submitAtLocked(arrival_ns, std::move(sample), opts);
}

std::future<Response>
Server::submitAtLocked(std::int64_t arrival_ns,
                       engine::Sample sample,
                       const RequestOptions &opts)
{
    PendingReq req = makeRequest(std::move(sample), opts, arrival_ns);
    auto fut = req.state->promise.get_future();
    Shard &sh = shardOf(req.request_id);
    std::lock_guard<std::mutex> slock(sh.mu);
    ++sh.delta.submitted;
    if (draining_.load() || stop_.load()) {
        fulfillRejectLocked(sh, req, Reject::ShuttingDown,
                            std::max(arrival_ns, virtual_now_));
        return fut;
    }
    arrivals_.push_back(Arrival{arrival_ns, std::move(req)});
    return fut;
}

bool
Server::tryReserveQueueSlot()
{
    // fetch_add-then-check keeps the bound exact under concurrent
    // submits to different shards: each admit atomically claims one
    // slot and rolls back on overflow.
    if (queued_.fetch_add(1) < cfg_.max_queue)
        return true;
    queued_.fetch_sub(1);
    return false;
}

void
Server::admitShardLocked(Shard &sh, PendingReq &&req, std::int64_t t)
{
    ++req.state->live;
    ++sh.delta.accepted;
    if (sh.delta.first_submit_ns < 0 || t < sh.delta.first_submit_ns)
        sh.delta.first_submit_ns = t;
    sh.pool.enqueue(std::move(req));
}

void
Server::fulfillRejectLocked(Shard &sh, PendingReq &req, Reject reason,
                            std::int64_t event_ns,
                            std::vector<Resolution> *defer)
{
    Response resp;
    resp.rejected = reason;
    resp.id = req.request_id;
    resp.submit_ns = req.submit_ns;
    resp.dispatch_ns = event_ns;
    resp.complete_ns = event_ns;
    resp.retries = req.state->failures;
    resp.hedged = req.state->hedged;
    switch (reason) {
      case Reject::QueueFull:
        ++sh.delta.rejected_queue_full;
        break;
      case Reject::DeadlineExceeded:
        ++sh.delta.rejected_deadline;
        break;
      case Reject::ShuttingDown:
        ++sh.delta.rejected_shutdown;
        break;
      case Reject::BreakerOpen:
        ++sh.delta.rejected_breaker;
        break;
      case Reject::ReplicaFailure:
        ++sh.delta.rejected_replica_failure;
        break;
      case Reject::None:
        break;
    }
    sh.delta.last_event_ns =
        std::max(sh.delta.last_event_ns, event_ns);
    req.state->resolved = true;
    if (defer != nullptr)
        defer->push_back(Resolution{req.state, std::move(resp)});
    else
        req.state->promise.set_value(std::move(resp));
}

void
Server::rejectQueuedLocked(Shard &sh, PendingReq &req, Reject reason,
                           std::int64_t event_ns)
{
    fulfillRejectLocked(sh, req, reason, event_ns);
    purgeShardCopiesLocked(sh, req.state);
}

void
Server::purgeShardCopiesLocked(
    Shard &sh, const std::shared_ptr<ReqState> &state)
{
    // First resolution wins: remove every still-queued copy of the
    // request (running copies discard themselves at completion).
    // All copies share the request_id, so they all live here.
    if (state->live <= 0)
        return;
    sh.pool.removeIf(
        [&](const PendingReq &q) {
            return state->live > 0 && q.state == state;
        },
        [&](PendingReq &&q) {
            if (q.is_hedge)
                ++sh.delta.hedges_cancelled;
            --state->live;
            queued_.fetch_sub(1);
        });
}

void
Server::reapTimersLocked(const std::shared_ptr<ReqState> &state)
{
    for (auto it = retries_.begin();
         it != retries_.end() && state->live > 0;) {
        if (it->req.state == state) {
            --state->live;
            it = retries_.erase(it);
        } else {
            ++it;
        }
    }
    if (!hedges_.empty())
        hedges_.erase(
            std::remove_if(hedges_.begin(), hedges_.end(),
                           [&](const HedgeTimer &h) {
                               return h.proto.state == state;
                           }),
            hedges_.end());
}

void
Server::shedShardLocked(Shard &sh, std::int64_t t, bool reap)
{
    sh.pool.removeIf(
        [&](const PendingReq &q) { return q.deadline_ns <= t; },
        [&](PendingReq &&q) {
            queued_.fetch_sub(1);
            --q.state->live;
            if (!q.state->resolved && q.state->live <= 0) {
                fulfillRejectLocked(sh, q, Reject::DeadlineExceeded,
                                    t);
                if (reap)
                    reapTimersLocked(q.state);
            }
        });
}

void
Server::shedExpiredAllLocked(std::int64_t t)
{
    for (auto &sh : shards_) {
        std::lock_guard<std::mutex> slock(sh->mu);
        shedShardLocked(*sh, t, /*reap=*/true);
    }
}

void
Server::wakeWorkers()
{
    // Workers publish themselves in sleepers_ before re-checking the
    // queue depth and waiting; the seq_cst total order over that
    // re-check and our enqueue guarantees either they saw the new
    // entry or we see sleepers_ > 0 here. Notifying under mu_ closes
    // the re-check-to-wait window.
    if (sleepers_.load() == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    work_cv_.notify_all();
}

bool
Server::flushReadyLocked(std::int64_t t, FlushCause *cause) const
{
    const std::size_t depth = queued_.load();
    if (depth == 0)
        return false;
    if (depth >= cfg_.max_batch) {
        *cause = FlushCause::Size;
        return true;
    }
    if (draining_.load() || stop_.load()) {
        *cause = FlushCause::Drain;
        return true;
    }
    const std::int64_t oldest = oldestQueuedAnyLocked();
    if (oldest != kNever && t - oldest >= cfg_.max_delay_ns) {
        *cause = FlushCause::Delay;
        return true;
    }
    return false;
}

bool
Server::replicaEligibleLocked(int replica) const
{
    if (health_[static_cast<std::size_t>(replica)].state !=
        ReplicaState::Active)
        return false;
    // HalfOpen admits a bounded number of concurrent trial batches.
    if (cfg_.breaker.enabled() &&
        breaker_.state == BreakerState::HalfOpen &&
        breaker_.half_open_inflight >= cfg_.breaker.half_open_probes)
        return false;
    return true;
}

Server::Batch
Server::takeBatchLocked(int replica, std::int64_t t, FlushCause cause)
{
    Batch batch;
    batch.replica = replica;
    batch.dispatch_ns = t;
    batch.cause = cause;

    // K-way merge over the shard lanes: hold every shard lock
    // (ascending index — the one multi-shard section) and repeatedly
    // pop the global (priority desc, id asc) best. Each pop is
    // O(shards), the whole flush O(batch * shards) — independent of
    // queue depth.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto &sh : shards_)
        locks.emplace_back(sh->mu);

    batch.reqs.reserve(cfg_.max_batch);
    std::vector<PendingReq> stash; // dup copies skipped this flush
    while (batch.reqs.size() < cfg_.max_batch) {
        Shard *best_sh = nullptr;
        const PendingReq *best = nullptr;
        for (auto &sh : shards_) {
            const PendingReq *p = sh->pool.peekBest();
            if (!p)
                continue;
            if (!best || p->priority > best->priority ||
                (p->priority == best->priority && p->id < best->id)) {
                best = p;
                best_sh = sh.get();
            }
        }
        if (!best)
            break;
        PendingReq req = best_sh->pool.popBest();
        queued_.fetch_sub(1);
        // Never put two copies of one request (primary + hedge) in
        // the same batch — the duplicate would be wasted work.
        bool dup = false;
        for (const PendingReq &q : batch.reqs)
            if (q.state == req.state) {
                dup = true;
                break;
            }
        if (dup)
            stash.push_back(std::move(req));
        else
            batch.reqs.push_back(std::move(req));
    }
    // Skipped duplicates stay queued: re-enqueue keeps their old ids
    // (sorted insert restores their lane position exactly).
    for (PendingReq &req : stash) {
        queued_.fetch_add(1);
        shardOf(req.request_id).pool.enqueue(std::move(req));
    }
    return batch;
}

std::int64_t
Server::oldestQueuedAnyLocked() const
{
    // Retry and hedge copies re-enter the queue with fresh enqueue
    // times, so the longest-waiting copy is found by scan, not by
    // smallest id. Min over shards is order-independent.
    std::int64_t oldest = kNever;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> slock(sh->mu);
        sh->pool.forEachLive([&](const PendingReq &q) {
            oldest = std::min(oldest, q.queued_ns);
        });
    }
    return oldest;
}

std::int64_t
Server::nearestDeadlineAnyLocked() const
{
    std::int64_t nearest = kNoDeadline;
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> slock(sh->mu);
        sh->pool.forEachLive([&](const PendingReq &q) {
            nearest = std::min(nearest, q.deadline_ns);
        });
    }
    return nearest;
}

int
Server::activeCountLocked() const
{
    int n = 0;
    for (const RepHealth &h : health_)
        n += h.state == ReplicaState::Active ? 1 : 0;
    return n;
}

bool
Server::workPendingLocked() const
{
    return queued_.load() > 0 || !retries_.empty() ||
           in_flight_ > 0;
}

std::int64_t
Server::backoffNs(std::uint64_t request_id, int attempt) const
{
    const RetryPolicy &rp = cfg_.retry;
    std::int64_t delay = std::max<std::int64_t>(1, rp.backoff_ns);
    for (int i = 1; i < attempt && delay < rp.backoff_max_ns; ++i)
        delay *= 2;
    delay = std::min(delay,
                     std::max<std::int64_t>(1, rp.backoff_max_ns));
    if (rp.jitter > 0.0) {
        // Keyed draw: the jitter of attempt k of request r is a pure
        // function of (seed, r, k) — no shared RNG state, so retry
        // schedules replay identically at any thread count.
        const std::uint64_t bits =
            keyedBits(cfg_.resilience_seed ^ kRetryJitterKey,
                      request_id, static_cast<std::uint64_t>(attempt));
        const double u =
            static_cast<double>(bits >> 11) * 0x1.0p-53;
        const double scale =
            1.0 - rp.jitter + 2.0 * rp.jitter * u;
        delay = static_cast<std::int64_t>(
            std::llround(static_cast<double>(delay) * scale));
    }
    return std::max<std::int64_t>(1, delay);
}

std::int64_t
Server::nextRetryNsLocked() const
{
    std::int64_t next = kNever;
    for (const RetryEntry &e : retries_)
        next = std::min(next, e.ready_ns);
    return next;
}

std::int64_t
Server::nextHedgeNsLocked() const
{
    std::int64_t next = kNever;
    for (const HedgeTimer &h : hedges_)
        next = std::min(next, h.fire_ns);
    return next;
}

std::int64_t
Server::nextProbeNsLocked() const
{
    std::int64_t next = kNever;
    for (const RepHealth &h : health_)
        if (h.state == ReplicaState::Quarantined)
            next = std::min(next, h.probe_at);
    return next;
}

void
Server::breakerAdvanceLocked(std::int64_t t)
{
    if (!cfg_.breaker.enabled())
        return;
    if (breaker_.state == BreakerState::Open &&
        t >= breaker_.open_until) {
        breaker_.state = BreakerState::HalfOpen;
        breaker_.half_open_successes = 0;
        breaker_.half_open_inflight = 0;
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.breaker_half_opens;
        metrics_.breaker = BreakerState::HalfOpen;
    }
}

void
Server::breakerOnOutcomeLocked(bool ok, bool trial, std::int64_t t)
{
    if (!cfg_.breaker.enabled())
        return;
    if (trial && breaker_.half_open_inflight > 0)
        --breaker_.half_open_inflight;
    if (ok) {
        breaker_.consecutive_failures = 0;
        if (breaker_.state == BreakerState::HalfOpen && trial &&
            ++breaker_.half_open_successes >=
                cfg_.breaker.half_open_probes) {
            breaker_.state = BreakerState::Closed;
            breaker_.half_open_successes = 0;
            std::lock_guard<std::mutex> mlock(metrics_mu_);
            ++metrics_.breaker_closes;
            metrics_.breaker = BreakerState::Closed;
        }
        return;
    }
    ++breaker_.consecutive_failures;
    const bool trip =
        breaker_.state == BreakerState::HalfOpen ||
        (breaker_.state == BreakerState::Closed &&
         breaker_.consecutive_failures >=
             cfg_.breaker.failure_threshold);
    if (trip) {
        breaker_.state = BreakerState::Open;
        breaker_.open_until = t + cfg_.breaker.open_ns;
        breaker_.half_open_inflight = 0;
        breaker_.half_open_successes = 0;
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.breaker_opens;
        metrics_.breaker = BreakerState::Open;
    }
}

void
Server::applyChaosAtDispatchLocked(Batch &batch)
{
    if (!cfg_.chaos.enabled())
        return;
    batch.fate = chaos_.onBatch(batch.replica, batch.dispatch_ns);
    const ChaosEngine::BatchFate &fate = batch.fate;
    int failed_npes_now = -1;
    if (fate.degrade_slot >= 0) {
        // The replica is idle at dispatch time, so the mark lands on
        // a batch boundary before this batch starts.
        const int slot =
            fate.degrade_slot % std::max(1, engine_.npeSlots());
        engine_.markReplicaDegraded(batch.replica, slot);
        failed_npes_now = engine_.failedNpeSlots(batch.replica);
    }
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    if (fate.crash)
        ++metrics_.chaos_crashes;
    if (fate.fault)
        ++metrics_.chaos_faults;
    if (fate.stall)
        ++metrics_.chaos_stalls;
    if (fate.slow_started)
        ++metrics_.chaos_slow_degrades;
    if (failed_npes_now >= 0) {
        ++metrics_.chaos_degrades;
        metrics_.replicas[static_cast<std::size_t>(batch.replica)]
            .failed_npes =
            static_cast<std::uint64_t>(failed_npes_now);
    }
}

void
Server::quarantineLocked(int replica, std::int64_t t)
{
    RepHealth &h = health_[static_cast<std::size_t>(replica)];
    if (h.state != ReplicaState::Active)
        return;
    h.state = ReplicaState::Quarantined;
    h.consecutive_bad = 0;
    h.probe_delay =
        std::max<std::int64_t>(1, cfg_.health.probe_delay_ns);
    h.probe_at = t + h.probe_delay;
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.quarantines;
        auto &rep =
            metrics_.replicas[static_cast<std::size_t>(replica)];
        ++rep.quarantines;
        rep.state = ReplicaState::Quarantined;
    }
    // Promote the lowest-index hot spare to keep the pool size.
    for (std::size_t s = 0; s < health_.size(); ++s) {
        if (health_[s].state != ReplicaState::Spare)
            continue;
        health_[s].state = ReplicaState::Active;
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.spares_promoted;
        metrics_.replicas[s].state = ReplicaState::Active;
        break;
    }
    work_cv_.notify_all();
}

void
Server::runProbeLocked(int replica, std::int64_t t)
{
    RepHealth &h = health_[static_cast<std::size_t>(replica)];
    sushi_assert(h.state == ReplicaState::Quarantined);
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.probes;
        ++metrics_
              .replicas[static_cast<std::size_t>(replica)]
              .probes;
    }
    const bool reachable =
        !(cfg_.chaos.enabled() && chaos_.crashed(replica, t));
    if (!reachable) {
        h.probe_delay = std::min<std::int64_t>(
            std::max<std::int64_t>(
                1, static_cast<std::int64_t>(std::llround(
                       static_cast<double>(h.probe_delay) *
                       cfg_.health.probe_backoff))),
            std::max<std::int64_t>(1,
                                   cfg_.health.probe_delay_max_ns));
        h.probe_at = t + h.probe_delay;
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.probe_failures;
        return;
    }
    // Probe success: reset the replica (chip re-biased, NPEs healed)
    // and readmit — Active if the pool is short, Spare otherwise.
    chaos_.heal(replica);
    engine_.healReplica(replica);
    engine_.clearReplicaStreak(replica);
    h.consecutive_bad = 0;
    h.state = activeCountLocked() < target_active_
                  ? ReplicaState::Active
                  : ReplicaState::Spare;
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.readmits;
        auto &rep =
            metrics_.replicas[static_cast<std::size_t>(replica)];
        ++rep.readmissions;
        rep.failed_npes = 0;
        rep.state = h.state;
    }
    work_cv_.notify_all();
}

void
Server::fireRetriesLocked(std::int64_t t)
{
    if (retries_.empty())
        return;
    std::vector<RetryEntry> due;
    for (auto it = retries_.begin(); it != retries_.end();) {
        if (it->ready_ns <= t) {
            due.push_back(std::move(*it));
            it = retries_.erase(it);
        } else {
            ++it;
        }
    }
    std::sort(due.begin(), due.end(),
              [](const RetryEntry &a, const RetryEntry &b) {
                  return a.ready_ns != b.ready_ns
                             ? a.ready_ns < b.ready_ns
                             : a.req.id < b.req.id;
              });
    for (RetryEntry &e : due) {
        PendingReq &req = e.req;
        Shard &sh = shardOf(req.request_id);
        std::lock_guard<std::mutex> slock(sh.mu);
        if (req.state->resolved) {
            --req.state->live;
            continue;
        }
        if (req.deadline_ns <= t) {
            --req.state->live;
            if (req.state->live <= 0) {
                fulfillRejectLocked(sh, req,
                                    Reject::DeadlineExceeded, t);
                reapTimersLocked(req.state);
            }
            continue;
        }
        if (cfg_.breaker.enabled() &&
            breaker_.state == BreakerState::Open) {
            // The breaker converts a retry storm into typed
            // fast-fails instead of re-queueing against a dead model.
            --req.state->live;
            if (req.state->live <= 0) {
                fulfillRejectLocked(sh, req, Reject::BreakerOpen, t);
                reapTimersLocked(req.state);
            }
            continue;
        }
        req.queued_ns = t;
        queued_.fetch_add(1); // re-admission bypasses max_queue
        sh.pool.enqueue(std::move(req));
    }
}

void
Server::fireHedgesLocked(std::int64_t t)
{
    if (hedges_.empty())
        return;
    std::vector<HedgeTimer> due;
    for (auto it = hedges_.begin(); it != hedges_.end();) {
        if (it->fire_ns <= t) {
            due.push_back(std::move(*it));
            it = hedges_.erase(it);
        } else {
            ++it;
        }
    }
    std::sort(due.begin(), due.end(),
              [](const HedgeTimer &a, const HedgeTimer &b) {
                  return a.fire_ns != b.fire_ns
                             ? a.fire_ns < b.fire_ns
                             : a.proto.request_id <
                                   b.proto.request_id;
              });
    for (HedgeTimer &h : due) {
        Shard &sh = shardOf(h.proto.request_id);
        std::lock_guard<std::mutex> slock(sh.mu);
        ReqState &st = *h.proto.state;
        // Void if resolved, already hedged, the armed dispatch
        // failed meanwhile, the deadline passed, or we're draining.
        if (st.resolved || st.hedged || st.failures != h.attempt ||
            h.proto.deadline_ns <= t || draining_.load() ||
            stop_.load())
            continue;
        PendingReq copy = std::move(h.proto);
        copy.id = next_id_.fetch_add(1, std::memory_order_relaxed);
        copy.queued_ns = t;
        copy.is_hedge = true;
        st.hedged = true;
        ++st.live;
        ++sh.delta.hedges_launched;
        queued_.fetch_add(1); // hedge copies bypass max_queue
        sh.pool.enqueue(std::move(copy));
    }
}

void
Server::scheduleHedgeLocked(const Batch &batch)
{
    if (!cfg_.hedge.enabled())
        return;
    for (const PendingReq &req : batch.reqs) {
        Shard &sh = shardOf(req.request_id);
        std::lock_guard<std::mutex> slock(sh.mu);
        if (req.is_hedge || req.state->hedged ||
            req.priority < cfg_.hedge.priority_floor)
            continue;
        HedgeTimer h;
        h.fire_ns = batch.dispatch_ns + cfg_.hedge.delay_ns;
        h.attempt = req.state->failures;
        h.proto = req; // shares sample and state
        hedges_.push_back(std::move(h));
    }
}

Server::Outcome
Server::executeBatch(Batch &batch)
{
    Outcome out;
    if (batch.fate.crash) {
        // The replica is unreachable: nothing executes, the batch
        // fails after the modelled detection latency.
        out.ok = false;
        return out;
    }
    std::vector<const engine::Sample *> ptrs;
    ptrs.reserve(batch.reqs.size());
    for (const PendingReq &req : batch.reqs)
        ptrs.push_back(req.sample.get());
    try {
        out.run = engine_.runOnReplica(batch.replica, ptrs.data(),
                                       ptrs.size());
    } catch (const std::exception &) {
        // A genuine engine failure is indistinguishable from chaos:
        // the batch fails and the health/retry machinery takes over.
        out.ok = false;
        out.run = engine::ReplicaRun{};
        return out;
    }
    if (batch.fate.fault) {
        // Escalate through the real typed path: the injected fault
        // is a timing-constraint violation, exactly what a marginal
        // JJ produces (results are discarded, service was charged).
        try {
            throw sfq::TimingFault("chaos.injector",
                                   "injected transient escalation",
                                   "chaos-transient");
        } catch (const sfq::TimingFault &) {
            out.ok = false;
        }
    }
    return out;
}

std::int64_t
Server::virtualServiceNs(const Batch &batch,
                         const Outcome &outcome) const
{
    if (batch.fate.crash)
        return std::max<std::int64_t>(
            1, cfg_.chaos.crash_detect_ns);
    double ps = 0.0;
    for (const auto &st : outcome.run.per_sample)
        ps += st.est_time_ps;
    auto ns = static_cast<std::int64_t>(std::llround(
        ps * cfg_.virtual_ns_per_ps * batch.fate.service_scale));
    if (ns < 1)
        ns = 1;
    return ns + cfg_.batch_overhead_ns;
}

void
Server::processOutcomeLocked(Batch &batch, Outcome &outcome,
                             std::int64_t complete_ns)
{
    const int r = batch.replica;
    const auto rr = static_cast<std::size_t>(r);
    const std::size_t n = batch.reqs.size();
    const std::int64_t service = complete_ns - batch.dispatch_ns;
    const bool ok = outcome.ok;

    engine_.recordBatchOutcome(r, ok, service, ok ? n : 0);
    breakerOnOutcomeLocked(ok, batch.half_open_trial, complete_ns);

    std::uint64_t served_here = 0;
    std::vector<std::size_t> answered; // merged-stats fold order
    std::vector<Resolution> to_resolve;

    if (ok) {
        sushi_assert(outcome.run.results.size() == n);
        answered.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            PendingReq &req = batch.reqs[i];
            Shard &sh = shardOf(req.request_id);
            std::lock_guard<std::mutex> slock(sh.mu);
            ReqState &st = *req.state;
            --st.live;
            if (st.resolved)
                continue; // a sibling copy already answered
            st.resolved = true;
            const bool was_hedged = st.hedged;
            sh.delta.queue_ns.sample(batch.dispatch_ns -
                                     req.submit_ns);
            sh.delta.service_ns.sample(service);
            sh.delta.total_ns.sample(complete_ns - req.submit_ns);
            ++sh.delta.completed;
            if (complete_ns > req.deadline_ns)
                ++sh.delta.deadline_missed;
            if (was_hedged) {
                if (req.is_hedge)
                    ++sh.delta.hedges_won;
                else
                    ++sh.delta.hedges_lost;
            }
            sh.delta.last_event_ns =
                std::max(sh.delta.last_event_ns, complete_ns);
            ++served_here;
            answered.push_back(i);
            Response resp;
            resp.result = std::move(outcome.run.results[i]);
            resp.id = req.request_id;
            resp.submit_ns = req.submit_ns;
            resp.dispatch_ns = batch.dispatch_ns;
            resp.complete_ns = complete_ns;
            resp.deadline_missed = complete_ns > req.deadline_ns;
            resp.replica = r;
            resp.batch_size = static_cast<int>(n);
            resp.retries = st.failures;
            resp.hedged = was_hedged;
            to_resolve.push_back(
                Resolution{req.state, std::move(resp)});
            purgeShardCopiesLocked(sh, req.state);
            reapTimersLocked(req.state);
        }
    } else {
        // Failure path: every request in the batch either rides
        // another live copy, re-queues within its retry budget, or
        // rejects.
        for (std::size_t i = 0; i < n; ++i) {
            PendingReq &req = batch.reqs[i];
            Shard &sh = shardOf(req.request_id);
            std::lock_guard<std::mutex> slock(sh.mu);
            ReqState &st = *req.state;
            --st.live;
            if (st.resolved)
                continue;
            if (st.live > 0)
                continue; // a hedge/retry copy is still carrying it
            ++st.failures;
            const int attempt = st.failures;
            if (cfg_.retry.enabled() &&
                attempt <= cfg_.retry.max_retries &&
                req.deadline_ns > complete_ns) {
                const std::int64_t delay =
                    backoffNs(req.request_id, attempt);
                ++st.live;
                ++sh.delta.retries;
                retries_.push_back(
                    RetryEntry{complete_ns + delay, std::move(req)});
            } else if (req.deadline_ns <= complete_ns) {
                fulfillRejectLocked(sh, req,
                                    Reject::DeadlineExceeded,
                                    complete_ns, &to_resolve);
                reapTimersLocked(req.state);
            } else {
                fulfillRejectLocked(sh, req, Reject::ReplicaFailure,
                                    complete_ns, &to_resolve);
                reapTimersLocked(req.state);
            }
        }
    }

    // One central metrics section per BATCH (not per request): the
    // batch counters plus the order-sensitive merged engine stats,
    // folded in request order.
    {
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        ++metrics_.batches;
        switch (batch.cause) {
          case FlushCause::Size: ++metrics_.flush_size; break;
          case FlushCause::Delay: ++metrics_.flush_delay; break;
          case FlushCause::Drain: ++metrics_.flush_drain; break;
        }
        metrics_.batch_size.sample(static_cast<std::int64_t>(n));
        auto &rep = metrics_.replicas[rr];
        ++rep.batches;
        rep.busy_ns += service;
        rep.samples += served_here;
        if (!ok) {
            ++metrics_.batch_failures;
            ++rep.failures;
        }
        metrics_.last_event_ns =
            std::max(metrics_.last_event_ns, complete_ns);
        for (std::size_t i : answered)
            metrics_.merged.accumulate(outcome.run.per_sample[i]);
        if (ok)
            // Energy is a pure function of synaptic work (matches
            // the engine's own merge).
            metrics_.merged.dynamic_energy_j =
                chip::dynamicEnergyJ(metrics_.merged.synaptic_ops);
    }

    // Only now resolve the futures: a caller that observes its
    // future complete and immediately snapshots metrics() must see
    // this batch fully recorded.
    for (Resolution &res : to_resolve)
        res.state->promise.set_value(std::move(res.resp));

    if (ok) {
        // Slow-degrade detection: a successful but slow batch still
        // counts against the replica's health streak.
        RepHealth &h = health_[rr];
        if (cfg_.health.slow_batch_ns != INT64_MAX &&
            service >= cfg_.health.slow_batch_ns) {
            if (++h.consecutive_bad >=
                std::max(1, cfg_.health.quarantine_after))
                quarantineLocked(r, complete_ns);
        } else {
            h.consecutive_bad = 0;
        }
        return;
    }
    // Health: a crash quarantines immediately; other failures feed
    // the consecutive-bad-batch detector.
    if (batch.fate.crash) {
        quarantineLocked(r, complete_ns);
    } else if (++health_[rr].consecutive_bad >=
               std::max(1, cfg_.health.quarantine_after)) {
        quarantineLocked(r, complete_ns);
    }
}

void
Server::workerMain(int replica)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        const std::int64_t t = realNow();
        breakerAdvanceLocked(t);
        RepHealth &h = health_[static_cast<std::size_t>(replica)];
        if (h.state == ReplicaState::Spare) {
            if (stop_.load())
                return;
            work_cv_.wait(lock);
            continue;
        }
        if (h.state == ReplicaState::Quarantined) {
            if (stop_.load())
                return;
            if (t < h.probe_at) {
                const std::int64_t wake =
                    std::min(h.probe_at, t + kMaxWaitNs);
                work_cv_.wait_until(
                    lock, epoch_ + std::chrono::nanoseconds(wake));
                continue;
            }
            runProbeLocked(replica, t);
            continue;
        }
        fireRetriesLocked(t);
        fireHedgesLocked(t);
        shedExpiredAllLocked(t);
        const std::size_t q0 = queued_.load();
        if (q0 == 0) {
            if (!workPendingLocked())
                drain_cv_.notify_all();
            if (stop_.load())
                return;
            const std::int64_t wake = std::min(
                {nextRetryNsLocked(), nextHedgeNsLocked(),
                 t + kMaxWaitNs});
            // Publish-then-recheck: a submitter that enqueued after
            // our load either sees sleepers_ > 0 and notifies under
            // mu_, or we see its entry here and skip the wait.
            sleepers_.fetch_add(1);
            if (queued_.load() == 0)
                work_cv_.wait_until(
                    lock, epoch_ + std::chrono::nanoseconds(wake));
            sleepers_.fetch_sub(1);
            continue;
        }
        FlushCause cause;
        if (replicaEligibleLocked(replica) &&
            flushReadyLocked(t, &cause)) {
            Batch batch = takeBatchLocked(replica, t, cause);
            if (batch.reqs.empty())
                continue; // a concurrent shed raced the decision
            applyChaosAtDispatchLocked(batch);
            if (cfg_.breaker.enabled() &&
                breaker_.state == BreakerState::HalfOpen) {
                batch.half_open_trial = true;
                ++breaker_.half_open_inflight;
            }
            scheduleHedgeLocked(batch);
            ++in_flight_;
            lock.unlock();
            Outcome out = executeBatch(batch);
            const std::int64_t done = realNow();
            lock.lock();
            --in_flight_;
            processOutcomeLocked(batch, out, done);
            drain_cv_.notify_all();
            work_cv_.notify_all();
            continue;
        }
        // Partial batch (or this replica is held out): sleep until
        // the delay flush, the nearest deadline, or the next
        // retry/hedge fire, whichever comes first (capped; new
        // arrivals and state changes notify).
        std::int64_t wake = t + kMaxWaitNs;
        if (replicaEligibleLocked(replica)) {
            const std::int64_t oldest = oldestQueuedAnyLocked();
            if (oldest != kNever)
                wake = std::min(wake, oldest + cfg_.max_delay_ns);
            wake = std::min(wake, nearestDeadlineAnyLocked());
        }
        wake = std::min(
            {wake, nextRetryNsLocked(), nextHedgeNsLocked()});
        sleepers_.fetch_add(1);
        if (queued_.load() == q0)
            work_cv_.wait_until(
                lock, epoch_ + std::chrono::nanoseconds(wake));
        sleepers_.fetch_sub(1);
    }
}

void
Server::runVirtual()
{
    sushi_assert(cfg_.clock == ClockMode::Virtual);
    std::unique_lock<std::mutex> lock(mu_);
    runVirtualLocked(lock);
}

void
Server::runVirtualLocked(std::unique_lock<std::mutex> &lock)
{
    // Fire arrivals in logical-time order; ties keep submission
    // order (stable sort — ids are assigned in submission order, so
    // this is independent of the shard count).
    std::stable_sort(arrivals_.begin(), arrivals_.end(),
                     [](const Arrival &a, const Arrival &b) {
                         return a.arrival_ns < b.arrival_ns;
                     });
    std::vector<Arrival> arrivals = std::move(arrivals_);
    arrivals_.clear();
    std::size_t next = 0;

    struct Running
    {
        Batch batch;
        Outcome outcome;
        std::int64_t complete_ns = 0;
    };
    std::vector<std::optional<Running>> running(
        static_cast<std::size_t>(engine_.replicas()));

    for (;;) {
        // Next event: arrival, completion, deadline expiry, batch
        // flush (only while an eligible replica is free), retry
        // ready, hedge fire, health probe, scripted chaos, or the
        // breaker's open_until.
        std::int64_t t = kNever;
        if (next < arrivals.size())
            t = std::min(t, arrivals[next].arrival_ns);
        bool any_running = false;
        bool any_eligible_free = false;
        for (std::size_t r = 0; r < running.size(); ++r) {
            if (running[r]) {
                any_running = true;
                t = std::min(t, running[r]->complete_ns);
            } else if (replicaEligibleLocked(static_cast<int>(r))) {
                any_eligible_free = true;
            }
        }
        const std::size_t depth = queued_.load();
        if (depth > 0) {
            t = std::min(t, nearestDeadlineAnyLocked());
            if (any_eligible_free) {
                if (depth >= cfg_.max_batch || draining_.load()) {
                    t = std::min(t, virtual_now_);
                } else {
                    const std::int64_t oldest =
                        oldestQueuedAnyLocked();
                    if (oldest != kNever)
                        t = std::min(t,
                                     oldest + cfg_.max_delay_ns);
                }
            }
        }
        t = std::min(t, nextRetryNsLocked());
        t = std::min(t, nextHedgeNsLocked());
        const bool work = depth > 0 || !retries_.empty() ||
                          any_running || next < arrivals.size();
        if (work) {
            t = std::min(t, nextProbeNsLocked());
            if (cfg_.chaos.enabled())
                t = std::min(t, chaos_.nextScriptNs());
            if (cfg_.breaker.enabled() &&
                breaker_.state == BreakerState::Open)
                t = std::min(t, breaker_.open_until);
        }
        if (t == kNever)
            break; // nothing queued, running, or yet to arrive
        virtual_now_ = std::max(virtual_now_, t);
        if (cfg_.chaos.enabled())
            chaos_.advance(virtual_now_);
        breakerAdvanceLocked(virtual_now_);

        // 1. Completions due, in (complete_ns, replica) order.
        std::vector<std::size_t> done;
        for (std::size_t r = 0; r < running.size(); ++r)
            if (running[r] &&
                running[r]->complete_ns <= virtual_now_)
                done.push_back(r);
        std::sort(done.begin(), done.end(),
                  [&](std::size_t a, std::size_t b) {
                      return running[a]->complete_ns !=
                                     running[b]->complete_ns
                                 ? running[a]->complete_ns <
                                       running[b]->complete_ns
                                 : a < b;
                  });
        for (std::size_t r : done) {
            processOutcomeLocked(running[r]->batch,
                                 running[r]->outcome,
                                 running[r]->complete_ns);
            running[r].reset();
        }

        // 2. Hedge fires, 3. health probes (replica order).
        fireHedgesLocked(virtual_now_);
        for (std::size_t r = 0; r < health_.size(); ++r)
            if (health_[r].state == ReplicaState::Quarantined &&
                health_[r].probe_at <= virtual_now_)
                runProbeLocked(static_cast<int>(r), virtual_now_);

        // 4. Shed queued requests whose deadlines have now passed,
        //    re-admit due retries, then fire due arrivals against
        //    the cleaned queue.
        shedExpiredAllLocked(virtual_now_);
        fireRetriesLocked(virtual_now_);
        while (next < arrivals.size() &&
               arrivals[next].arrival_ns <= virtual_now_) {
            const std::int64_t at =
                std::max(arrivals[next].arrival_ns, virtual_now_);
            PendingReq req = std::move(arrivals[next].req);
            ++next;
            req.submit_ns = at;
            req.queued_ns = at;
            Shard &sh = shardOf(req.request_id);
            std::lock_guard<std::mutex> slock(sh.mu);
            if (req.deadline_ns <= at) {
                fulfillRejectLocked(sh, req,
                                    Reject::DeadlineExceeded, at);
            } else if (cfg_.breaker.enabled() &&
                       breaker_.state == BreakerState::Open) {
                fulfillRejectLocked(sh, req, Reject::BreakerOpen,
                                    at);
            } else if (!tryReserveQueueSlot()) {
                fulfillRejectLocked(sh, req, Reject::QueueFull, at);
            } else {
                admitShardLocked(sh, std::move(req), at);
            }
        }

        // 5. Form batches on eligible free replicas (ascending id),
        //    then execute them concurrently over the worker pool.
        std::vector<Batch> formed;
        for (std::size_t r = 0; r < running.size(); ++r) {
            if (running[r] ||
                !replicaEligibleLocked(static_cast<int>(r)))
                continue;
            FlushCause cause;
            if (!flushReadyLocked(virtual_now_, &cause))
                break;
            Batch batch = takeBatchLocked(static_cast<int>(r),
                                          virtual_now_, cause);
            if (batch.reqs.empty())
                break;
            applyChaosAtDispatchLocked(batch);
            if (cfg_.breaker.enabled() &&
                breaker_.state == BreakerState::HalfOpen) {
                batch.half_open_trial = true;
                ++breaker_.half_open_inflight;
            }
            scheduleHedgeLocked(batch);
            formed.push_back(std::move(batch));
        }
        if (!formed.empty()) {
            std::vector<Outcome> outs(formed.size());
            lock.unlock();
            parallelFor(
                formed.size(),
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                        outs[i] = executeBatch(formed[i]);
                },
                ParallelOptions{/*grain=*/1, cfg_.max_threads});
            lock.lock();
            for (std::size_t i = 0; i < formed.size(); ++i) {
                const auto r =
                    static_cast<std::size_t>(formed[i].replica);
                const std::int64_t service =
                    virtualServiceNs(formed[i], outs[i]);
                running[r] = Running{std::move(formed[i]),
                                     std::move(outs[i]),
                                     virtual_now_ + service};
            }
        }
    }
    drain_cv_.notify_all();
}

void
Server::drain()
{
    if (cfg_.clock == ClockMode::Virtual) {
        std::unique_lock<std::mutex> lock(mu_);
        draining_.store(true);
        runVirtualLocked(lock);
        return;
    }
    draining_.store(true);
    // Barrier sweep: admission checks draining_ INSIDE the shard
    // critical section, so once every shard mutex has been locked
    // and released here, any submit that read draining_ == false has
    // finished admitting — its queued_ increment is visible to the
    // wait below, and every later submit rejects ShuttingDown.
    for (auto &sh : shards_) {
        std::lock_guard<std::mutex> slock(sh->mu);
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.notify_all();
    drain_cv_.wait(lock, [this] { return !workPendingLocked(); });
}

void
Server::shutdown()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_.load() && workers_.empty())
            return;
        stop_.store(true);
    }
    work_cv_.notify_all();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
}

ServerMetrics
Server::metrics() const
{
    // Fold the shard deltas into the rollup in ascending shard
    // order. Folding resets each delta, so back-to-back snapshots
    // are byte-identical; every delta field commutes, so the result
    // is independent of the shard count and of when previous folds
    // happened.
    for (const auto &sh : shards_) {
        std::lock_guard<std::mutex> slock(sh->mu);
        if (sh->delta.empty())
            continue;
        std::lock_guard<std::mutex> mlock(metrics_mu_);
        sh->delta.foldInto(metrics_);
    }
    std::lock_guard<std::mutex> mlock(metrics_mu_);
    return metrics_;
}

} // namespace sushi::serve
