#include "serve/request_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sushi::serve {

std::uint32_t
RequestPool::allocSlot(PendingReq &&req)
{
    std::uint32_t s;
    if (free_head_ != kNoSlot) {
        s = free_head_;
        free_head_ = slots_[s].next_free;
        slots_[s].req = std::move(req);
    } else {
        s = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{std::move(req), kNoSlot, false});
    }
    slots_[s].live = true;
    ++live_;
    return s;
}

void
RequestPool::freeSlot(std::uint32_t s)
{
    sushi_assert(slots_[s].live);
    slots_[s].live = false;
    // Release the shared_ptrs now; the slot shell is recycled.
    slots_[s].req.sample.reset();
    slots_[s].req.state.reset();
    slots_[s].next_free = free_head_;
    free_head_ = s;
    sushi_assert(live_ > 0);
    --live_;
}

RequestPool::Lane &
RequestPool::laneFor(int priority)
{
    const auto it = std::lower_bound(
        lanes_.begin(), lanes_.end(), priority,
        [](const Lane &lane, int p) { return lane.priority > p; });
    if (it != lanes_.end() && it->priority == priority)
        return *it;
    return *lanes_.insert(it, Lane{priority, {}});
}

void
RequestPool::enqueue(PendingReq &&req)
{
    const std::uint64_t id = req.id;
    Lane &lane = laneFor(req.priority);
    const std::uint32_t s = allocSlot(std::move(req));
    if (lane.fifo.empty() || lane.fifo.back().id < id) {
        lane.fifo.push_back(Entry{id, s});
        return;
    }
    // Re-enqueue of an old id (a fired retry): sorted insert keeps
    // the lane's ascending-id invariant. Rare — O(lane) is fine.
    const auto pos = std::lower_bound(
        lane.fifo.begin(), lane.fifo.end(), id,
        [](const Entry &e, std::uint64_t v) { return e.id < v; });
    lane.fifo.insert(pos, Entry{id, s});
}

const PendingReq *
RequestPool::peekBest()
{
    for (Lane &lane : lanes_) {
        while (!lane.fifo.empty() && stale(lane.fifo.front()))
            lane.fifo.pop_front();
        if (!lane.fifo.empty())
            return &slots_[lane.fifo.front().slot].req;
    }
    return nullptr;
}

PendingReq
RequestPool::popBest()
{
    for (Lane &lane : lanes_) {
        while (!lane.fifo.empty() && stale(lane.fifo.front()))
            lane.fifo.pop_front();
        if (lane.fifo.empty())
            continue;
        const std::uint32_t s = lane.fifo.front().slot;
        lane.fifo.pop_front();
        PendingReq out = std::move(slots_[s].req);
        slots_[s].req = PendingReq{};
        slots_[s].live = false;
        slots_[s].next_free = free_head_;
        free_head_ = s;
        sushi_assert(live_ > 0);
        --live_;
        return out;
    }
    sushi_panic("popBest on an empty RequestPool");
    return PendingReq{};
}

} // namespace sushi::serve
