/**
 * @file
 * Request-facing value types of the serving layer: scheduling
 * options, typed rejection causes, the response a request's future
 * resolves to, and the clock-domain selector.
 *
 * Split out of server.hh (PR 10) so the sharded pending-queue
 * storage (request_pool.hh) can hold a std::promise<Response>
 * without pulling in the Server itself — std::promise requires its
 * result type to be complete.
 */

#ifndef SUSHI_SERVE_REQUEST_HH
#define SUSHI_SERVE_REQUEST_HH

#include <cstdint>

#include "engine/inference_engine.hh"

namespace sushi::serve {

/** "No deadline" sentinel for RequestOptions::deadline_ns. */
constexpr std::int64_t kNoDeadline = INT64_MAX;

/** Clock domain the server schedules in. */
enum class ClockMode { Real, Virtual };

/** Why a request was rejected instead of served. */
enum class Reject : std::uint8_t {
    None = 0,         ///< served
    QueueFull,        ///< admission bound hit
    DeadlineExceeded, ///< deadline passed before execution
    ShuttingDown,     ///< submitted after drain()/shutdown()
    BreakerOpen,      ///< circuit breaker fast-fail
    ReplicaFailure,   ///< dispatch failed and retry budget exhausted
};

/** Stable lowercase name for a rejection cause. */
const char *rejectName(Reject r);

/** Per-request scheduling options. */
struct RequestOptions
{
    /** Absolute deadline in the server's clock domain; the request
     *  is shed (never executed) once this instant passes. */
    std::int64_t deadline_ns = kNoDeadline;

    /** Higher priorities are dequeued first; ties serve in arrival
     *  order. */
    int priority = 0;
};

/** What a request's future resolves to. */
struct Response
{
    engine::SampleResult result; ///< empty when rejected
    Reject rejected = Reject::None;

    bool ok() const { return rejected == Reject::None; }

    std::uint64_t id = 0;        ///< admission sequence number
    std::int64_t submit_ns = 0;  ///< admission instant
    std::int64_t dispatch_ns = 0; ///< batch formation instant
    std::int64_t complete_ns = 0; ///< completion / rejection instant
    bool deadline_missed = false; ///< served, but past its deadline
    int replica = -1;            ///< replica that served it
    int batch_size = 0;          ///< size of its batch
    int retries = 0;             ///< failed dispatches beforehand
    bool hedged = false;         ///< a hedge copy was launched

    std::int64_t queueNs() const { return dispatch_ns - submit_ns; }
    std::int64_t serviceNs() const
    {
        return complete_ns - dispatch_ns;
    }
    std::int64_t totalNs() const { return complete_ns - submit_ns; }
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_REQUEST_HH
