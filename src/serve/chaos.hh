/**
 * @file
 * Seed-deterministic chaos injection at the serve/engine boundary.
 *
 * A ChaosPolicy describes the fault environment of a replica pool —
 * whole-chip crashes (flux trap / bias loss), stalls, persistent
 * slow-degrade (JJ margin drift), transient sfq::TimingFault
 * escalations and NPE failures (PR 1's markNpeFailed) — and the
 * ChaosEngine turns it into per-batch verdicts the Server consults
 * every time it dispatches work to a replica.
 *
 * Determinism contract (the property the chaos tests assert): every
 * random decision is a *keyed* counter draw (common/rng keyedBits),
 * keyed by (seed, replica, per-replica dispatch sequence). The
 * sequence numbers are assigned under the server lock in event
 * order, so under the virtual clock an entire chaos campaign — which
 * batch crashed, which stalled, which NPE failed — replays
 * byte-identically at any worker-thread count. No wall-clock time or
 * thread identity ever feeds a draw.
 *
 * Scripted events complement the random rates: a ChaosScript entry
 * fires at a fixed virtual instant on a fixed replica, which is how
 * tests and bench_chaos_availability stage the "one of four replicas
 * crashes mid-run" scenario. Crashes gate probes immediately;
 * latched effects (stall, slow-degrade, NPE failure) apply at the
 * replica's next dispatch.
 */

#ifndef SUSHI_SERVE_CHAOS_HH
#define SUSHI_SERVE_CHAOS_HH

#include <cstdint>
#include <vector>

namespace sushi::serve {

/** Kinds of injected faults. */
enum class ChaosKind : std::uint8_t {
    None = 0,
    Crash,        ///< whole-chip failure; batches fail until healed
    Stall,        ///< one batch served stall_factor times slower
    SlowDegrade,  ///< persistent service slowdown until readmitted
    TransientFault, ///< batch dies with an escalated sfq::TimingFault
    NpeDegrade,   ///< one output NPE fails (SushiChip::markNpeFailed)
};

/** Stable lowercase name of a chaos kind. */
const char *chaosKindName(ChaosKind k);

/** One scripted fault: @p kind hits @p replica at @p at_ns. */
struct ChaosScript
{
    std::int64_t at_ns = 0;
    int replica = 0;
    ChaosKind kind = ChaosKind::Crash;
    int slot = 0; ///< NpeDegrade: output-NPE slot to fail
};

/** The fault environment of a replica pool. */
struct ChaosPolicy
{
    /** Seed of every keyed draw; equal seeds replay identically. */
    std::uint64_t seed = 0;

    /// @name Per-dispatch fault probabilities.
    /// @{
    double crash_rate = 0.0;
    double stall_rate = 0.0;
    double slow_rate = 0.0;
    double fault_rate = 0.0;   ///< transient TimingFault escalation
    double degrade_rate = 0.0; ///< NPE failure
    /// @}

    /** Service-time multiplier of a stalled batch. */
    double stall_factor = 50.0;

    /** Multiplier compounded onto a replica's service time per
     *  slow-degrade event (cleared when the replica is readmitted). */
    double slow_factor = 4.0;

    /** A crashed replica stays unreachable this long; after that a
     *  probe succeeds and the server may readmit it. */
    std::int64_t crash_hold_ns = 20'000'000;

    /** Service time charged to a batch that hits a crashed replica
     *  (failure-detection latency, not a full execution). */
    std::int64_t crash_detect_ns = 50'000;

    /** Deterministic scripted faults (sorted by at_ns internally). */
    std::vector<ChaosScript> script;

    bool enabled() const
    {
        return crash_rate > 0.0 || stall_rate > 0.0 ||
               slow_rate > 0.0 || fault_rate > 0.0 ||
               degrade_rate > 0.0 || !script.empty();
    }
};

/**
 * Per-pool chaos state machine. All methods must be called under the
 * server's scheduling lock; decisions depend only on (policy,
 * replica, dispatch sequence, logical time).
 */
class ChaosEngine
{
  public:
    ChaosEngine(const ChaosPolicy &policy, int replicas);

    const ChaosPolicy &policy() const { return policy_; }

    /** Verdict for one dispatched batch. */
    struct BatchFate
    {
        bool crash = false; ///< batch fails; replica unreachable
        bool fault = false; ///< batch fails with a TimingFault
        bool stall = false; ///< batch served stall_factor slower
        bool slow_started = false; ///< replica began slow-degrading
        int degrade_slot = -1;     ///< >= 0: fail this NPE slot now
        double service_scale = 1.0;

        bool failed() const { return crash || fault; }
    };

    /**
     * Decide the fate of the next batch dispatched on @p replica at
     * logical time @p now_ns. Consumes one dispatch sequence number;
     * the verdict is a pure function of (seed, replica, sequence)
     * plus scripted events due by @p now_ns.
     */
    BatchFate onBatch(int replica, std::int64_t now_ns);

    /** True if @p replica is crash-unreachable at @p now_ns (what a
     *  health probe observes). */
    bool crashed(int replica, std::int64_t now_ns);

    /** Apply scripted events due by @p now_ns (the virtual clock
     *  calls this when it wakes at nextScriptNs() so a script always
     *  makes progress even if no dispatch observes it). */
    void advance(std::int64_t now_ns) { advanceTo(now_ns); }

    /** Readmission hook: clears the replica's slow-degrade scale and
     *  any latched faults (the chip was reset / re-biased). */
    void heal(int replica);

    /** Earliest un-applied scripted event (INT64_MAX if none) — a
     *  virtual-clock event candidate. */
    std::int64_t nextScriptNs() const;

  private:
    void advanceTo(std::int64_t now_ns);

    ChaosPolicy policy_;
    std::size_t script_next_ = 0; ///< first un-applied script entry

    struct Rep
    {
        std::uint32_t seq = 0; ///< dispatches drawn so far
        std::int64_t crashed_until_ns = -1;
        double slow_scale = 1.0;
        bool pending_stall = false;  ///< latched scripted stall
        int pending_degrade = -1;    ///< latched scripted NPE slot
    };
    std::vector<Rep> reps_;
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_CHAOS_HH
