/**
 * @file
 * Observability snapshot of the serving layer.
 *
 * ServerMetrics is a value type: Server::metrics() copies the live
 * counters/histograms under the metrics lock and the caller owns the
 * snapshot. Every aggregate is integer-valued or derived from
 * integers at render time, so in virtual-clock mode toJson() is
 * byte-identical across worker-thread counts and across repeated
 * runs of the same seeded workload (the serve determinism property
 * in tests/test_serve.cc, extended to whole chaos campaigns in
 * tests/test_chaos.cc).
 *
 * PR 6 adds the resilience counters: retries, hedge outcomes,
 * circuit-breaker transitions, quarantine/probe/readmission
 * accounting, chaos injection totals, and per-replica health state
 * including the failed-NPE gauge surfaced from the chip layer — so
 * a degraded-but-alive replica is distinguishable from a healthy
 * one in the same snapshot that shows a quarantined one.
 */

#ifndef SUSHI_SERVE_METRICS_HH
#define SUSHI_SERVE_METRICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "chip/sushi_chip.hh"
#include "common/histogram.hh"
#include "serve/resilience.hh"

namespace sushi::serve {

/** Per-replica serving totals and health state. */
struct ReplicaMetrics
{
    std::uint64_t batches = 0;  ///< batches executed
    std::uint64_t samples = 0;  ///< requests served
    std::int64_t busy_ns = 0;   ///< time spent executing batches

    /// @name Health accounting (PR 6).
    /// @{
    std::uint64_t failures = 0;     ///< failed batches
    std::uint64_t quarantines = 0;  ///< times quarantined
    std::uint64_t probes = 0;       ///< health probes run
    std::uint64_t readmissions = 0; ///< probe-success readmits
    std::uint64_t failed_npes = 0;  ///< current failed-NPE gauge
    ReplicaState state = ReplicaState::Active; ///< at snapshot time
    /// @}

    /** Degraded-but-alive: serving with remapped NPEs. */
    bool degraded() const { return failed_npes > 0; }
};

/** One coherent snapshot of the server's counters and latency
 *  distributions. */
struct ServerMetrics
{
    /// @name Request accounting.
    /// @{
    std::uint64_t submitted = 0; ///< submit()/submitAt() calls seen
    std::uint64_t accepted = 0;  ///< admitted to the queue
    std::uint64_t completed = 0; ///< executed and answered
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0; ///< shed before execution
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t rejected_breaker = 0;  ///< breaker fast-fails
    std::uint64_t rejected_replica_failure = 0; ///< retries exhausted
    std::uint64_t deadline_missed = 0; ///< completed after deadline
    /// @}

    /// @name Batcher accounting.
    /// @{
    std::uint64_t batches = 0;
    std::uint64_t flush_size = 0;  ///< flushed at max_batch
    std::uint64_t flush_delay = 0; ///< flushed at max_delay_ns
    std::uint64_t flush_drain = 0; ///< flushed by drain/shutdown
    std::uint64_t batch_failures = 0; ///< dispatches that failed
    /// @}

    /// @name Recovery accounting (PR 6).
    /// @{
    std::uint64_t retries = 0;          ///< retry dispatches queued
    std::uint64_t hedges_launched = 0;  ///< hedge copies enqueued
    std::uint64_t hedges_won = 0;       ///< hedge resolved first
    std::uint64_t hedges_lost = 0;      ///< primary resolved first
    std::uint64_t hedges_cancelled = 0; ///< copy cancelled unqueued
    std::uint64_t breaker_opens = 0;
    std::uint64_t breaker_half_opens = 0;
    std::uint64_t breaker_closes = 0;
    std::uint64_t quarantines = 0;      ///< replicas failed out
    std::uint64_t probes = 0;           ///< health probes run
    std::uint64_t probe_failures = 0;
    std::uint64_t readmits = 0;         ///< probe-success readmits
    std::uint64_t spares_promoted = 0;  ///< hot spares activated
    BreakerState breaker = BreakerState::Closed; ///< at snapshot
    /// @}

    /// @name Chaos injection totals (PR 6).
    /// @{
    std::uint64_t chaos_crashes = 0;
    std::uint64_t chaos_stalls = 0;
    std::uint64_t chaos_slow_degrades = 0;
    std::uint64_t chaos_faults = 0;
    std::uint64_t chaos_degrades = 0; ///< injected NPE failures
    /// @}

    /// @name Latency and batch-size distributions (nanoseconds in
    /// the server's clock domain).
    /// @{
    Histogram queue_ns{Histogram::exponential()};
    Histogram service_ns{Histogram::exponential()};
    Histogram total_ns{Histogram::exponential()};
    Histogram batch_size{Histogram::linear(1, 64, 1)};
    /// @}

    /** Per-replica totals (index = replica id). */
    std::vector<ReplicaMetrics> replicas;

    /** Engine stats folded at batch completion, in completion order
     *  (deterministic under the virtual clock). Includes the
     *  compiler-diagnostic gauges (disabled_neurons, plan_reloads,
     *  jj/area utilisation of the worst plan stage) surfaced through
     *  engine::statsJson. */
    chip::InferenceStats merged;

    std::int64_t first_submit_ns = -1; ///< first admission (-1: none)
    std::int64_t last_event_ns = 0;    ///< latest completion/reject

    /** Observed serving span (first submit to last event). */
    std::int64_t spanNs() const
    {
        return first_submit_ns < 0 ? 0
                                   : last_event_ns - first_submit_ns;
    }

    /** busy_ns of replica @p r as a fraction of spanNs(). */
    double utilisation(std::size_t r) const;

    /** Requests answered on time per second of span. */
    double goodputRps() const;

    /**
     * Availability: fraction of submitted requests that were served
     * AND met their deadline (non-shed, deadline-met fraction — the
     * metric the chaos availability sweep records). 1.0 when nothing
     * was submitted.
     */
    double availability() const;

    /** Replicas currently serving with failed NPEs remapped. */
    std::uint64_t degradedReplicas() const;

    /**
     * Byte-deterministic JSON rendering (common/stats::JsonWriter
     * formatting rules; histograms via Histogram::json()). Equal
     * snapshots give equal bytes.
     */
    std::string toJson() const;
};

/**
 * Shard-local metrics accumulator of the sharded front-end (PR 10).
 *
 * Admission-path events (submissions, acceptances, typed rejections)
 * are recorded here under the owning shard's lock instead of taking
 * the global metrics lock per request; completion processing records
 * one delta per batch the same way. Deltas are folded into the
 * ServerMetrics rollup at snapshot/drain time in ascending shard
 * order — every field is an integer counter, a min/max watermark, or
 * a fixed-bucket histogram (Histogram::merge), so the fold commutes
 * and the rollup is byte-identical for any shard count and any fold
 * schedule.
 */
struct MetricsDelta
{
    /// @name Admission-side counters (shard deltas).
    /// @{
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t rejected_deadline = 0;
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t rejected_breaker = 0;
    std::uint64_t rejected_replica_failure = 0;
    std::uint64_t hedges_launched = 0;
    std::uint64_t hedges_cancelled = 0;
    std::uint64_t retries = 0;
    /// @}

    /// @name Completion-side counters (per-batch deltas).
    /// @{
    std::uint64_t completed = 0;
    std::uint64_t deadline_missed = 0;
    std::uint64_t hedges_won = 0;
    std::uint64_t hedges_lost = 0;
    /// @}

    /// @name Watermarks (min / max merge).
    /// @{
    std::int64_t first_submit_ns = -1; ///< min (-1 = none)
    std::int64_t last_event_ns = 0;    ///< max
    /// @}

    /// @name Latency histogram deltas (Histogram::merge path).
    /// @{
    Histogram queue_ns{Histogram::exponential()};
    Histogram service_ns{Histogram::exponential()};
    Histogram total_ns{Histogram::exponential()};
    /// @}

    /** True when nothing has been recorded since the last fold —
     *  the steady-state early-out of the snapshot path. */
    bool empty() const;

    /** Add every field into @p into, then reset this delta in place
     *  (histograms keep their bucket allocation). */
    void foldInto(ServerMetrics &into);
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_METRICS_HH
