#include "serve/load_gen.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sushi::serve {

std::vector<GeneratedArrival>
poissonArrivals(const LoadGenConfig &cfg)
{
    sushi_assert(cfg.rate_rps > 0.0);
    sushi_assert(cfg.sample_pool >= 1);
    sushi_assert(cfg.priorities >= 1);
    Rng rng(cfg.seed);
    std::vector<GeneratedArrival> out;
    out.reserve(cfg.requests);
    const double mean_gap_ns = 1e9 / cfg.rate_rps;
    double t = 0.0;
    for (std::size_t i = 0; i < cfg.requests; ++i) {
        // Exponential inter-arrival gap; 1 - uniform() is in (0, 1].
        t += -std::log(1.0 - rng.uniform()) * mean_gap_ns;
        GeneratedArrival a;
        a.arrival_ns = static_cast<std::int64_t>(t);
        a.sample_index = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(cfg.sample_pool)));
        if (cfg.priorities > 1)
            a.opts.priority = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(cfg.priorities)));
        if (cfg.deadline_ns != kNoDeadline)
            a.opts.deadline_ns = a.arrival_ns + cfg.deadline_ns;
        out.push_back(a);
    }
    return out;
}

} // namespace sushi::serve
