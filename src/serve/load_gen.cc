#include "serve/load_gen.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sushi::serve {

namespace {

/** Exponential variate with the given mean; 1 - uniform() is in
 *  (0, 1] so the log argument never hits zero. */
double
expGap(Rng &rng, double mean)
{
    return -std::log(1.0 - rng.uniform()) * mean;
}

/** Fill the per-request fields shared by every arrival process. */
GeneratedArrival
makeArrival(const LoadGenConfig &cfg, Rng &rng, double t)
{
    GeneratedArrival a;
    a.arrival_ns = static_cast<std::int64_t>(t);
    a.sample_index = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(cfg.sample_pool)));
    if (cfg.priorities > 1)
        a.opts.priority = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(cfg.priorities)));
    if (cfg.deadline_ns != kNoDeadline)
        a.opts.deadline_ns = a.arrival_ns + cfg.deadline_ns;
    return a;
}

void
checkCommon(const LoadGenConfig &cfg)
{
    sushi_assert(cfg.rate_rps > 0.0);
    sushi_assert(cfg.sample_pool >= 1);
    sushi_assert(cfg.priorities >= 1);
}

} // namespace

std::vector<GeneratedArrival>
poissonArrivals(const LoadGenConfig &cfg)
{
    checkCommon(cfg);
    Rng rng(cfg.seed);
    std::vector<GeneratedArrival> out;
    out.reserve(cfg.requests);
    const double mean_gap_ns = 1e9 / cfg.rate_rps;
    double t = 0.0;
    for (std::size_t i = 0; i < cfg.requests; ++i) {
        t += expGap(rng, mean_gap_ns);
        out.push_back(makeArrival(cfg, rng, t));
    }
    return out;
}

std::vector<GeneratedArrival>
burstyArrivals(const LoadGenConfig &cfg)
{
    checkCommon(cfg);
    sushi_assert(cfg.burst_on_ns > 0 && cfg.burst_off_ns > 0);
    const double on_rate = cfg.burst_rate_rps > 0.0
                               ? cfg.burst_rate_rps
                               : 4.0 * cfg.rate_rps;
    const double mean_gap_ns = 1e9 / on_rate;
    Rng rng(cfg.seed);
    std::vector<GeneratedArrival> out;
    out.reserve(cfg.requests);
    // Alternate exponentially-long ON/OFF phases; arrivals are a
    // Poisson stream confined to the ON phases. Phase boundaries and
    // gaps come from the same sequential seeded stream, so the whole
    // trace is one pure function of (config, seed).
    double t = 0.0;
    double phase_end =
        expGap(rng, static_cast<double>(cfg.burst_on_ns));
    bool on = true;
    while (out.size() < cfg.requests) {
        if (!on) {
            t = phase_end;
            phase_end =
                t + expGap(rng,
                           static_cast<double>(cfg.burst_on_ns));
            on = true;
            continue;
        }
        const double gap = expGap(rng, mean_gap_ns);
        if (t + gap >= phase_end) {
            // The burst ended before the next arrival; jump to the
            // start of the next OFF phase.
            t = phase_end;
            phase_end =
                t + expGap(rng,
                           static_cast<double>(cfg.burst_off_ns));
            on = false;
            continue;
        }
        t += gap;
        out.push_back(makeArrival(cfg, rng, t));
    }
    return out;
}

std::vector<GeneratedArrival>
diurnalArrivals(const LoadGenConfig &cfg)
{
    checkCommon(cfg);
    sushi_assert(cfg.diurnal_period_ns > 0);
    sushi_assert(cfg.diurnal_amplitude >= 0.0 &&
                 cfg.diurnal_amplitude <= 1.0);
    Rng rng(cfg.seed);
    std::vector<GeneratedArrival> out;
    out.reserve(cfg.requests);
    // Thinning (Lewis-Shedler): draw candidates at the peak rate and
    // accept with probability rate(t)/peak. Exact for any bounded
    // rate profile, and deterministic because both the candidate
    // stream and the accept draws come from the one seeded Rng.
    const double peak_rps =
        cfg.rate_rps * (1.0 + cfg.diurnal_amplitude);
    const double mean_gap_ns = 1e9 / peak_rps;
    const double two_pi = 2.0 * 3.14159265358979323846;
    double t = 0.0;
    while (out.size() < cfg.requests) {
        t += expGap(rng, mean_gap_ns);
        const double phase =
            two_pi * t / static_cast<double>(cfg.diurnal_period_ns);
        double rate = cfg.rate_rps *
                      (1.0 + cfg.diurnal_amplitude * std::sin(phase));
        if (rate < 0.0)
            rate = 0.0;
        if (rng.uniform() * peak_rps < rate)
            out.push_back(makeArrival(cfg, rng, t));
    }
    return out;
}

ClosedLoopReport
runClosedLoop(Server &server,
              const std::vector<engine::Sample> &samples,
              const ClosedLoopConfig &cfg)
{
    sushi_assert(server.config().clock == ClockMode::Real);
    sushi_assert(cfg.concurrency >= 1);
    sushi_assert(cfg.priorities >= 1);
    sushi_assert(!samples.empty());
    sushi_assert(cfg.sample_pool >= 1 &&
                 cfg.sample_pool <= samples.size());

    const auto slots = static_cast<std::size_t>(cfg.concurrency);
    std::vector<std::uint64_t> served(slots, 0);
    std::vector<std::uint64_t> rejected(slots, 0);
    std::atomic<std::uint64_t> issued{0};

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(slots);
    for (std::size_t slot = 0; slot < slots; ++slot) {
        drivers.emplace_back([&, slot] {
            // Each slot's draw stream is keyed by (seed, slot, k):
            // request contents replay for a given seed regardless of
            // how the threads interleave on the wall clock.
            for (std::uint64_t k = 0;; ++k) {
                if (issued.fetch_add(1) >= cfg.requests)
                    return;
                const std::uint64_t pick =
                    keyedBits(cfg.seed, slot, 2 * k);
                const std::size_t idx = static_cast<std::size_t>(
                    pick % cfg.sample_pool);
                RequestOptions opts;
                if (cfg.priorities > 1)
                    opts.priority = static_cast<int>(
                        keyedBits(cfg.seed, slot, 2 * k + 1) %
                        static_cast<std::uint64_t>(cfg.priorities));
                if (cfg.deadline_ns != kNoDeadline)
                    opts.deadline_ns =
                        server.now() + cfg.deadline_ns;
                auto fut = server.submit(samples[idx], opts);
                const Response resp = fut.get();
                if (resp.ok())
                    ++served[slot];
                else
                    ++rejected[slot];
            }
        });
    }
    for (std::thread &t : drivers)
        t.join();
    const auto t1 = std::chrono::steady_clock::now();

    ClosedLoopReport report;
    report.submitted = cfg.requests;
    for (std::size_t slot = 0; slot < slots; ++slot) {
        report.served += served[slot];
        report.rejected += rejected[slot];
    }
    report.wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    return report;
}

} // namespace sushi::serve
