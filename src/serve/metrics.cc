#include "serve/metrics.hh"

#include <algorithm>

#include "common/stats.hh"
#include "engine/inference_engine.hh"

namespace sushi::serve {

double
ServerMetrics::utilisation(std::size_t r) const
{
    const std::int64_t span = spanNs();
    if (r >= replicas.size() || span <= 0)
        return 0.0;
    return static_cast<double>(replicas[r].busy_ns) /
           static_cast<double>(span);
}

double
ServerMetrics::goodputRps() const
{
    const std::int64_t span = spanNs();
    if (span <= 0)
        return 0.0;
    const std::uint64_t on_time = completed - deadline_missed;
    return static_cast<double>(on_time) * 1e9 /
           static_cast<double>(span);
}

double
ServerMetrics::availability() const
{
    if (submitted == 0)
        return 1.0;
    const std::uint64_t on_time = completed - deadline_missed;
    return static_cast<double>(on_time) /
           static_cast<double>(submitted);
}

std::uint64_t
ServerMetrics::degradedReplicas() const
{
    std::uint64_t n = 0;
    for (const ReplicaMetrics &r : replicas)
        n += r.degraded() ? 1 : 0;
    return n;
}

bool
MetricsDelta::empty() const
{
    return submitted == 0 && accepted == 0 &&
           rejected_queue_full == 0 && rejected_deadline == 0 &&
           rejected_shutdown == 0 && rejected_breaker == 0 &&
           rejected_replica_failure == 0 && hedges_launched == 0 &&
           hedges_cancelled == 0 && retries == 0 && completed == 0 &&
           deadline_missed == 0 && hedges_won == 0 &&
           hedges_lost == 0 && first_submit_ns < 0 &&
           last_event_ns == 0 && queue_ns.count() == 0 &&
           service_ns.count() == 0 && total_ns.count() == 0;
}

void
MetricsDelta::foldInto(ServerMetrics &into)
{
    into.submitted += submitted;
    into.accepted += accepted;
    into.rejected_queue_full += rejected_queue_full;
    into.rejected_deadline += rejected_deadline;
    into.rejected_shutdown += rejected_shutdown;
    into.rejected_breaker += rejected_breaker;
    into.rejected_replica_failure += rejected_replica_failure;
    into.hedges_launched += hedges_launched;
    into.hedges_cancelled += hedges_cancelled;
    into.retries += retries;
    into.completed += completed;
    into.deadline_missed += deadline_missed;
    into.hedges_won += hedges_won;
    into.hedges_lost += hedges_lost;
    if (first_submit_ns >= 0 &&
        (into.first_submit_ns < 0 ||
         first_submit_ns < into.first_submit_ns))
        into.first_submit_ns = first_submit_ns;
    into.last_event_ns = std::max(into.last_event_ns, last_event_ns);
    into.queue_ns.merge(queue_ns);
    into.service_ns.merge(service_ns);
    into.total_ns.merge(total_ns);
    submitted = accepted = 0;
    rejected_queue_full = rejected_deadline = 0;
    rejected_shutdown = rejected_breaker = 0;
    rejected_replica_failure = 0;
    hedges_launched = hedges_cancelled = retries = 0;
    completed = deadline_missed = hedges_won = hedges_lost = 0;
    first_submit_ns = -1;
    last_event_ns = 0;
    queue_ns.reset();
    service_ns.reset();
    total_ns.reset();
}

std::string
ServerMetrics::toJson() const
{
    JsonWriter w;
    w.field("submitted", submitted);
    w.field("accepted", accepted);
    w.field("completed", completed);
    w.field("rejected_queue_full", rejected_queue_full);
    w.field("rejected_deadline", rejected_deadline);
    w.field("rejected_shutdown", rejected_shutdown);
    w.field("rejected_breaker", rejected_breaker);
    w.field("rejected_replica_failure", rejected_replica_failure);
    w.field("deadline_missed", deadline_missed);
    w.field("batches", batches);
    w.field("flush_size", flush_size);
    w.field("flush_delay", flush_delay);
    w.field("flush_drain", flush_drain);
    w.field("batch_failures", batch_failures);
    w.field("retries", retries);
    w.field("hedges_launched", hedges_launched);
    w.field("hedges_won", hedges_won);
    w.field("hedges_lost", hedges_lost);
    w.field("hedges_cancelled", hedges_cancelled);
    w.field("breaker_opens", breaker_opens);
    w.field("breaker_half_opens", breaker_half_opens);
    w.field("breaker_closes", breaker_closes);
    w.field("breaker_state", breakerStateName(breaker));
    w.field("quarantines", quarantines);
    w.field("probes", probes);
    w.field("probe_failures", probe_failures);
    w.field("readmits", readmits);
    w.field("spares_promoted", spares_promoted);
    w.field("chaos_crashes", chaos_crashes);
    w.field("chaos_stalls", chaos_stalls);
    w.field("chaos_slow_degrades", chaos_slow_degrades);
    w.field("chaos_faults", chaos_faults);
    w.field("chaos_degrades", chaos_degrades);
    w.field("degraded_replicas", degradedReplicas());
    w.field("first_submit_ns", first_submit_ns);
    w.field("last_event_ns", last_event_ns);
    w.field("span_ns", spanNs());
    w.field("goodput_rps", goodputRps());
    w.field("availability", availability());
    w.rawField("queue_ns", queue_ns.json());
    w.rawField("service_ns", service_ns.json());
    w.rawField("total_ns", total_ns.json());
    w.rawField("batch_size", batch_size.json());
    w.beginArray("replicas");
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        w.beginObject();
        w.field("replica", static_cast<int>(r));
        w.field("state", replicaStateName(replicas[r].state));
        w.field("batches", replicas[r].batches);
        w.field("samples", replicas[r].samples);
        w.field("busy_ns", replicas[r].busy_ns);
        w.field("failures", replicas[r].failures);
        w.field("quarantines", replicas[r].quarantines);
        w.field("probes", replicas[r].probes);
        w.field("readmissions", replicas[r].readmissions);
        w.field("failed_npes", replicas[r].failed_npes);
        w.field("degraded", replicas[r].degraded());
        w.field("utilisation", utilisation(r));
        w.endObject();
    }
    w.endArray();
    w.rawField("merged_stats", engine::statsJson(merged));
    return w.finish();
}

} // namespace sushi::serve
