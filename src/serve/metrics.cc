#include "serve/metrics.hh"

#include "common/stats.hh"
#include "engine/inference_engine.hh"

namespace sushi::serve {

double
ServerMetrics::utilisation(std::size_t r) const
{
    const std::int64_t span = spanNs();
    if (r >= replicas.size() || span <= 0)
        return 0.0;
    return static_cast<double>(replicas[r].busy_ns) /
           static_cast<double>(span);
}

double
ServerMetrics::goodputRps() const
{
    const std::int64_t span = spanNs();
    if (span <= 0)
        return 0.0;
    const std::uint64_t on_time = completed - deadline_missed;
    return static_cast<double>(on_time) * 1e9 /
           static_cast<double>(span);
}

std::string
ServerMetrics::toJson() const
{
    JsonWriter w;
    w.field("submitted", submitted);
    w.field("accepted", accepted);
    w.field("completed", completed);
    w.field("rejected_queue_full", rejected_queue_full);
    w.field("rejected_deadline", rejected_deadline);
    w.field("rejected_shutdown", rejected_shutdown);
    w.field("deadline_missed", deadline_missed);
    w.field("batches", batches);
    w.field("flush_size", flush_size);
    w.field("flush_delay", flush_delay);
    w.field("flush_drain", flush_drain);
    w.field("first_submit_ns", first_submit_ns);
    w.field("last_event_ns", last_event_ns);
    w.field("span_ns", spanNs());
    w.field("goodput_rps", goodputRps());
    w.rawField("queue_ns", queue_ns.json());
    w.rawField("service_ns", service_ns.json());
    w.rawField("total_ns", total_ns.json());
    w.rawField("batch_size", batch_size.json());
    w.beginArray("replicas");
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        w.beginObject();
        w.field("replica", static_cast<int>(r));
        w.field("batches", replicas[r].batches);
        w.field("samples", replicas[r].samples);
        w.field("busy_ns", replicas[r].busy_ns);
        w.field("utilisation", utilisation(r));
        w.endObject();
    }
    w.endArray();
    w.rawField("merged_stats", engine::statsJson(merged));
    return w.finish();
}

} // namespace sushi::serve
