#include "serve/chaos.hh"

#include <algorithm>
#include <climits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sushi::serve {

namespace {

/** Keyed-draw lanes within one dispatch sequence number. A dispatch
 *  consumes a fixed counter window, so the draw for effect k of
 *  dispatch s never depends on which other effects fired. */
constexpr std::uint32_t kDrawsPerDispatch = 8;
enum DrawLane : std::uint32_t {
    kLaneCrash = 0,
    kLaneFault = 1,
    kLaneStall = 2,
    kLaneSlow = 3,
    kLaneDegrade = 4,
    kLaneDegradeSlot = 5,
};

double
drawUniform(const ChaosPolicy &p, int replica, std::uint32_t seq,
            std::uint32_t lane)
{
    const std::uint64_t bits =
        keyedBits(p.seed ^ 0xc4a05f7d2e8b9613ULL,
                  static_cast<std::uint64_t>(replica),
                  static_cast<std::uint64_t>(seq) * kDrawsPerDispatch +
                      lane);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

} // namespace

const char *
chaosKindName(ChaosKind k)
{
    switch (k) {
      case ChaosKind::None: return "none";
      case ChaosKind::Crash: return "crash";
      case ChaosKind::Stall: return "stall";
      case ChaosKind::SlowDegrade: return "slow_degrade";
      case ChaosKind::TransientFault: return "transient_fault";
      case ChaosKind::NpeDegrade: return "npe_degrade";
    }
    return "?";
}

ChaosEngine::ChaosEngine(const ChaosPolicy &policy, int replicas)
    : policy_(policy), reps_(static_cast<std::size_t>(replicas))
{
    sushi_assert(replicas >= 1);
    // Scripted events apply in (time, list-position) order.
    std::stable_sort(policy_.script.begin(), policy_.script.end(),
                     [](const ChaosScript &a, const ChaosScript &b) {
                         return a.at_ns < b.at_ns;
                     });
    for (const ChaosScript &ev : policy_.script)
        sushi_assert(ev.replica >= 0 && ev.replica < replicas);
}

void
ChaosEngine::advanceTo(std::int64_t now_ns)
{
    while (script_next_ < policy_.script.size() &&
           policy_.script[script_next_].at_ns <= now_ns) {
        const ChaosScript &ev = policy_.script[script_next_++];
        Rep &rep = reps_[static_cast<std::size_t>(ev.replica)];
        switch (ev.kind) {
          case ChaosKind::Crash:
            rep.crashed_until_ns = ev.at_ns + policy_.crash_hold_ns;
            break;
          case ChaosKind::Stall:
            rep.pending_stall = true;
            break;
          case ChaosKind::SlowDegrade:
            rep.slow_scale *= policy_.slow_factor;
            break;
          case ChaosKind::NpeDegrade:
            rep.pending_degrade = ev.slot;
            break;
          case ChaosKind::TransientFault:
          case ChaosKind::None:
            break; // transient faults only make sense per dispatch
        }
    }
}

ChaosEngine::BatchFate
ChaosEngine::onBatch(int replica, std::int64_t now_ns)
{
    sushi_assert(replica >= 0 &&
                 static_cast<std::size_t>(replica) < reps_.size());
    advanceTo(now_ns);
    Rep &rep = reps_[static_cast<std::size_t>(replica)];
    const std::uint32_t seq = rep.seq++;

    BatchFate fate;
    if (rep.crashed_until_ns > now_ns) {
        fate.crash = true;
        return fate;
    }
    if (policy_.crash_rate > 0.0 &&
        drawUniform(policy_, replica, seq, kLaneCrash) <
            policy_.crash_rate) {
        rep.crashed_until_ns = now_ns + policy_.crash_hold_ns;
        fate.crash = true;
        return fate;
    }
    if (policy_.fault_rate > 0.0 &&
        drawUniform(policy_, replica, seq, kLaneFault) <
            policy_.fault_rate) {
        fate.fault = true;
        return fate;
    }
    if (rep.pending_stall ||
        (policy_.stall_rate > 0.0 &&
         drawUniform(policy_, replica, seq, kLaneStall) <
             policy_.stall_rate)) {
        rep.pending_stall = false;
        fate.stall = true;
    }
    if (policy_.slow_rate > 0.0 &&
        drawUniform(policy_, replica, seq, kLaneSlow) <
            policy_.slow_rate) {
        rep.slow_scale *= policy_.slow_factor;
        fate.slow_started = true;
    }
    if (rep.pending_degrade >= 0) {
        fate.degrade_slot = rep.pending_degrade;
        rep.pending_degrade = -1;
    } else if (policy_.degrade_rate > 0.0 &&
               drawUniform(policy_, replica, seq, kLaneDegrade) <
                   policy_.degrade_rate) {
        // Slot chosen by a keyed draw; the server clamps it to the
        // chip's actual output-slot count.
        fate.degrade_slot = static_cast<int>(
            keyedBits(policy_.seed ^ 0x9d2c5680ca3b17efULL,
                      static_cast<std::uint64_t>(replica),
                      static_cast<std::uint64_t>(seq) *
                              kDrawsPerDispatch +
                          kLaneDegradeSlot) &
            0x7fffffff);
    }
    fate.service_scale =
        rep.slow_scale * (fate.stall ? policy_.stall_factor : 1.0);
    return fate;
}

bool
ChaosEngine::crashed(int replica, std::int64_t now_ns)
{
    sushi_assert(replica >= 0 &&
                 static_cast<std::size_t>(replica) < reps_.size());
    advanceTo(now_ns);
    return reps_[static_cast<std::size_t>(replica)].crashed_until_ns >
           now_ns;
}

void
ChaosEngine::heal(int replica)
{
    sushi_assert(replica >= 0 &&
                 static_cast<std::size_t>(replica) < reps_.size());
    Rep &rep = reps_[static_cast<std::size_t>(replica)];
    rep.slow_scale = 1.0;
    rep.pending_stall = false;
    rep.pending_degrade = -1;
    rep.crashed_until_ns = -1;
}

std::int64_t
ChaosEngine::nextScriptNs() const
{
    if (script_next_ >= policy_.script.size())
        return INT64_MAX;
    return policy_.script[script_next_].at_ns;
}

} // namespace sushi::serve
