/**
 * @file
 * Seeded open-loop arrival-process generator for the serving layer.
 *
 * Produces a deterministic Poisson arrival schedule (exponential
 * inter-arrival gaps from a seeded Rng) that tests and the
 * bench_serve_latency sweep feed into a virtual-clock Server via
 * submitAt(). Equal (config, seed) give byte-equal schedules, which
 * is half of the serve determinism contract — the other half is the
 * Server's virtual event loop.
 */

#ifndef SUSHI_SERVE_LOAD_GEN_HH
#define SUSHI_SERVE_LOAD_GEN_HH

#include <cstdint>
#include <vector>

#include "serve/server.hh"

namespace sushi::serve {

/** Arrival-process knobs. */
struct LoadGenConfig
{
    /** Mean arrival rate, requests per (virtual) second. */
    double rate_rps = 1000.0;

    /** Number of requests to generate. */
    std::size_t requests = 1000;

    /** Size of the sample pool indices are drawn from. */
    std::size_t sample_pool = 1;

    /** RNG seed; equal seeds give equal schedules. */
    std::uint64_t seed = 1;

    /** Relative deadline added to each arrival instant
     *  (kNoDeadline = none). */
    std::int64_t deadline_ns = kNoDeadline;

    /** Priorities are drawn uniformly from [0, priorities). */
    int priorities = 1;
};

/** One generated request arrival. */
struct GeneratedArrival
{
    std::int64_t arrival_ns = 0;
    std::size_t sample_index = 0; ///< in [0, sample_pool)
    RequestOptions opts;
};

/** Deterministic Poisson arrival schedule (sorted by arrival_ns). */
std::vector<GeneratedArrival>
poissonArrivals(const LoadGenConfig &cfg);

} // namespace sushi::serve

#endif // SUSHI_SERVE_LOAD_GEN_HH
