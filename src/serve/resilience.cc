#include "serve/resilience.hh"

namespace sushi::serve {

const char *
replicaStateName(ReplicaState s)
{
    switch (s) {
      case ReplicaState::Active: return "active";
      case ReplicaState::Quarantined: return "quarantined";
      case ReplicaState::Spare: return "spare";
    }
    return "?";
}

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed: return "closed";
      case BreakerState::Open: return "open";
      case BreakerState::HalfOpen: return "half_open";
    }
    return "?";
}

} // namespace sushi::serve
