/**
 * @file
 * Slab-allocated pending-request storage with incrementally
 * maintained per-priority FIFO lanes — the per-shard queue of the
 * sharded serving front-end (PR 10).
 *
 * The PR 4 batcher kept every queued request copy in one global
 * `std::map<id, Pending>` and rebuilt + sorted a (priority, id)
 * vector over the WHOLE queue on every flush: O(n log n) work and
 * one node allocation per admit, all under the single server mutex.
 * This class replaces that map for one admission shard:
 *
 *  - Slab + freelist. Requests live in stable slots of a growable
 *    slab; admission reuses freed slots, so steady-state admits
 *    allocate nothing and never invalidate other slots.
 *  - Per-priority FIFO lanes. Each distinct priority owns a deque of
 *    (copy id, slot) entries ordered by ascending id; lanes are kept
 *    sorted by descending priority. Admissions carry fresh monotone
 *    ids and push_back in O(1); the rare retry re-enqueue (which
 *    keeps its original id) does a sorted insert.
 *  - O(batch) flush. peekBest()/popBest() return the (priority desc,
 *    id asc) front — the head of the first non-empty lane — so a
 *    flush pops exactly max_batch entries instead of sorting the
 *    queue.
 *  - Lazy lane deletion. Removals (deadline sheds, duplicate-copy
 *    purges) free the slab slot only; the lane entry goes stale and
 *    is dropped when a peek or pop walks over it. Staleness is
 *    detected by (slot live, slot id == entry id) — slot reuse always
 *    changes the id, because copy ids are globally monotone.
 *
 * Thread safety: none. Each shard guards its pool with its own
 * mutex; the Server defines the lock order.
 */

#ifndef SUSHI_SERVE_REQUEST_POOL_HH
#define SUSHI_SERVE_REQUEST_POOL_HH

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "engine/inference_engine.hh"
#include "serve/request.hh"

namespace sushi::serve {

/** Shared per-request bookkeeping: the promise plus the copy /
 *  retry / hedge state every live copy of the request points at.
 *  Guarded by the owning shard's mutex (all copies of one request
 *  route to the same shard). */
struct ReqState
{
    std::promise<Response> promise;
    bool resolved = false;
    int failures = 0; ///< failed dispatches (retry budget)
    int live = 0;     ///< copies queued / running / backing off
    bool hedged = false; ///< hedge copy launched
};

/** One queued copy of a request. */
struct PendingReq
{
    std::uint64_t id = 0;         ///< per-copy admission key
    std::uint64_t request_id = 0; ///< original admission id
    int priority = 0;
    std::int64_t submit_ns = 0; ///< original arrival (latency t0)
    std::int64_t queued_ns = 0; ///< this copy's enqueue instant
    std::int64_t deadline_ns = kNoDeadline;
    bool is_hedge = false;
    std::shared_ptr<const engine::Sample> sample;
    std::shared_ptr<ReqState> state;
};

/** One shard's pending-request store (see file comment). */
class RequestPool
{
  public:
    /** Insert a copy; O(1) amortized for fresh (monotone) ids,
     *  O(lane) sorted insert for a re-enqueued old id. */
    void enqueue(PendingReq &&req);

    /** Live entries currently queued. */
    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }

    /**
     * The (priority desc, id asc) front entry, or nullptr when
     * empty. Stale lane entries encountered on the way are dropped.
     * The pointer is invalidated by any mutating call.
     */
    const PendingReq *peekBest();

    /** Pop the front entry; pool must be non-empty. */
    PendingReq popBest();

    /**
     * Remove every live entry matching @p pred (called as
     * pred(const PendingReq &)); each removed entry is moved into
     * consume(PendingReq &&). Lane entries are left to lazy
     * deletion. Returns the number of entries removed.
     */
    template <typename Pred, typename Consume>
    std::size_t removeIf(Pred &&pred, Consume &&consume)
    {
        std::size_t removed = 0;
        for (std::uint32_t s = 0;
             s < static_cast<std::uint32_t>(slots_.size()); ++s) {
            if (!slots_[s].live || !pred(slots_[s].req))
                continue;
            consume(std::move(slots_[s].req));
            freeSlot(s);
            ++removed;
        }
        return removed;
    }

    /** Visit every live entry (scan order is slot order — callers
     *  must only fold order-independent aggregates like min/max). */
    template <typename Fn>
    void forEachLive(Fn &&fn) const
    {
        for (const Slot &slot : slots_)
            if (slot.live)
                fn(slot.req);
    }

  private:
    struct Slot
    {
        PendingReq req;
        std::uint32_t next_free = 0;
        bool live = false;
    };

    /** (copy id, slot) lane entry; stale iff the slot died or was
     *  reused under a different id. */
    struct Entry
    {
        std::uint64_t id = 0;
        std::uint32_t slot = 0;
    };

    struct Lane
    {
        int priority = 0;
        std::deque<Entry> fifo;
    };

    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    bool stale(const Entry &e) const
    {
        return !slots_[e.slot].live || slots_[e.slot].req.id != e.id;
    }

    std::uint32_t allocSlot(PendingReq &&req);
    void freeSlot(std::uint32_t s);

    /** Lane for @p priority (lanes kept sorted descending),
     *  created on demand. */
    Lane &laneFor(int priority);

    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNoSlot;
    std::size_t live_ = 0;
    std::vector<Lane> lanes_; ///< sorted by descending priority
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_REQUEST_POOL_HH
