/**
 * @file
 * Request-level serving frontend over the batched inference engine.
 *
 * The engine (PR 2/3) answers closed offline batches; this layer is
 * what faces traffic. A Server accepts single inference requests
 * (submit() returns a future), coalesces them with a dynamic batcher
 * (flush at max_batch requests or once the oldest waits max_delay_ns),
 * schedules each batch onto a dedicated SushiChip replica through
 * InferenceEngine::runOnReplica, and sheds load with typed
 * rejections once the admission bound on queue depth is hit or a
 * request's deadline has passed. drain()/shutdown() finish all
 * admitted work before stopping; every future is always resolved.
 *
 * Two clock modes:
 *
 *  - ClockMode::Real — wall-clock serving. One worker thread per
 *    replica pulls batches from the shared pending queue; timestamps
 *    are steady_clock nanoseconds since construction. Throughput is
 *    whatever the host delivers; no byte-determinism is promised.
 *
 *  - ClockMode::Virtual — deterministic discrete-event serving for
 *    tests and the open-loop bench. Requests carry logical arrival
 *    times (submitAt), runVirtual() plays the whole timeline:
 *    batches form at exact logical instants, service time is the
 *    batch's *modelled chip time* (est_time_ps scaled by
 *    virtual_ns_per_ps), and completions/rejections are processed in
 *    a fixed order. Same seed + config => byte-identical
 *    ServerMetrics::toJson() for ANY worker-thread count (batch
 *    execution still fans out over the worker pool), and every
 *    per-request result is bit-identical to running that sample
 *    alone through a SushiChip — the engine's determinism contract
 *    lifted to the request level.
 *
 * Batcher state machine (both modes share it):
 *
 *        +--------- submit/submitAt ----------+
 *        v                                    |
 *   [Accumulating] --size >= max_batch--> [Flush(size)]
 *        | oldest wait >= max_delay_ns -> [Flush(delay)]
 *        | draining && nonempty -------> [Flush(drain)]
 *        | deadline passed ------------> reject(DeadlineExceeded)
 *        | depth == max_queue at admit -> reject(QueueFull)
 *
 * A flush pops up to max_batch requests in (priority desc, arrival
 * asc) order onto the first free replica; expired requests are shed
 * at pop time, never executed.
 */

#ifndef SUSHI_SERVE_SERVER_HH
#define SUSHI_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/inference_engine.hh"
#include "serve/metrics.hh"

namespace sushi::serve {

/** "No deadline" sentinel for RequestOptions::deadline_ns. */
constexpr std::int64_t kNoDeadline = INT64_MAX;

/** Clock domain the server schedules in. */
enum class ClockMode { Real, Virtual };

/** Why a request was rejected instead of served. */
enum class Reject : std::uint8_t {
    None = 0,         ///< served
    QueueFull,        ///< admission bound hit
    DeadlineExceeded, ///< deadline passed before execution
    ShuttingDown,     ///< submitted after drain()/shutdown()
};

/** Stable lowercase name for a rejection cause. */
const char *rejectName(Reject r);

/** Serving knobs. */
struct ServerConfig
{
    /** Replica pool configuration (EngineConfig::replicas sizes the
     *  pool; 0 selects parallelWorkers()). */
    engine::EngineConfig engine;

    /** Flush a batch once this many requests have coalesced. */
    std::size_t max_batch = 8;

    /** Flush a partial batch once its oldest request has waited this
     *  long (the queue-delay knob of the dynamic batcher). */
    std::int64_t max_delay_ns = 200'000;

    /** Admission bound: submissions beyond this many queued requests
     *  are rejected with Reject::QueueFull. */
    std::size_t max_queue = 1024;

    ClockMode clock = ClockMode::Real;

    /** Virtual mode: service nanoseconds charged per modelled chip
     *  picosecond (host/IO surcharge over the raw die time). */
    double virtual_ns_per_ps = 1.0;

    /** Virtual mode: fixed per-batch dispatch overhead. */
    std::int64_t batch_overhead_ns = 0;

    /** Virtual mode: cap on worker threads executing simultaneous
     *  batches (0 = pool size). Metrics are byte-identical for every
     *  value — the determinism knob. */
    unsigned max_threads = 0;
};

/** Per-request scheduling options. */
struct RequestOptions
{
    /** Absolute deadline in the server's clock domain; the request
     *  is shed (never executed) once this instant passes. */
    std::int64_t deadline_ns = kNoDeadline;

    /** Higher priorities are dequeued first; ties serve in arrival
     *  order. */
    int priority = 0;
};

/** What a request's future resolves to. */
struct Response
{
    engine::SampleResult result; ///< empty when rejected
    Reject rejected = Reject::None;

    bool ok() const { return rejected == Reject::None; }

    std::uint64_t id = 0;        ///< admission sequence number
    std::int64_t submit_ns = 0;  ///< admission instant
    std::int64_t dispatch_ns = 0; ///< batch formation instant
    std::int64_t complete_ns = 0; ///< completion / rejection instant
    bool deadline_missed = false; ///< served, but past its deadline
    int replica = -1;            ///< replica that served it
    int batch_size = 0;          ///< size of its batch

    std::int64_t queueNs() const { return dispatch_ns - submit_ns; }
    std::int64_t serviceNs() const
    {
        return complete_ns - dispatch_ns;
    }
    std::int64_t totalNs() const { return complete_ns - submit_ns; }
};

/** The request-level inference server. */
class Server
{
  public:
    Server(std::shared_ptr<const engine::CompiledModel> model,
           const ServerConfig &cfg = {});
    ~Server(); ///< shutdown(): resolves every outstanding future

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    const ServerConfig &config() const { return cfg_; }
    int replicas() const { return engine_.replicas(); }

    /** Current time in the server's clock domain (ns). */
    std::int64_t now() const;

    /**
     * Submit one request; never blocks. The future always resolves —
     * with a result, or with a typed rejection. In virtual mode this
     * is submitAt(now()).
     */
    std::future<Response> submit(engine::Sample sample,
                                 const RequestOptions &opts = {});

    /**
     * Virtual mode: enqueue a request arriving at @p arrival_ns.
     * Admission control runs when the arrival fires inside
     * runVirtual(), against the queue state at that logical instant.
     */
    std::future<Response> submitAt(std::int64_t arrival_ns,
                                   engine::Sample sample,
                                   const RequestOptions &opts = {});

    /**
     * Virtual mode: play the timeline until every enqueued arrival
     * has been served or shed. Single driver thread; batch execution
     * fans out over the worker pool (cfg.max_threads wide).
     */
    void runVirtual();

    /**
     * Stop admitting (later submissions resolve ShuttingDown) and
     * wait until every queued and in-flight request has resolved.
     * Partial batches flush immediately. Idempotent.
     */
    void drain();

    /** drain(), then stop and join the worker threads. Idempotent;
     *  the destructor calls it. */
    void shutdown();

    /** Coherent snapshot of the serving metrics. */
    ServerMetrics metrics() const;

  private:
    /** Why a batch flushed. */
    enum class FlushCause : std::uint8_t { Size, Delay, Drain };

    struct Pending
    {
        std::uint64_t id = 0;
        int priority = 0;
        std::int64_t submit_ns = 0;
        std::int64_t deadline_ns = kNoDeadline;
        engine::Sample sample;
        std::promise<Response> promise;
    };

    struct Batch
    {
        int replica = -1;
        std::int64_t dispatch_ns = 0;
        FlushCause cause = FlushCause::Size;
        std::vector<Pending> reqs;
    };

    /** A virtual-mode arrival waiting for its logical instant. */
    struct Arrival
    {
        std::int64_t arrival_ns = 0;
        Pending req;
    };

    // Shared batcher/admission logic (mu_ held).
    std::future<Response> submitAtLocked(std::int64_t arrival_ns,
                                         engine::Sample sample,
                                         const RequestOptions &opts);
    void admitLocked(Pending &&req, std::int64_t t);
    void resolveReject(Pending &req, Reject reason,
                       std::int64_t event_ns);
    void shedExpiredLocked(std::int64_t t);
    bool flushReadyLocked(std::int64_t t, FlushCause *cause) const;
    Batch takeBatchLocked(int replica, std::int64_t t,
                          FlushCause cause);
    std::int64_t oldestSubmitLocked() const;
    std::int64_t nearestDeadlineLocked() const;

    // Execution + metrics (mu_ NOT held for runBatch).
    engine::ReplicaRun runBatch(Batch &batch);
    std::int64_t virtualServiceNs(const engine::ReplicaRun &run) const;
    void finishBatch(Batch &batch, engine::ReplicaRun &run,
                     std::int64_t complete_ns);

    void workerMain(int replica);
    void runVirtualLocked(std::unique_lock<std::mutex> &lock);

    std::shared_ptr<const engine::CompiledModel> model_;
    ServerConfig cfg_;
    engine::InferenceEngine engine_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers: queue activity
    std::condition_variable drain_cv_; ///< drain(): progress
    std::map<std::uint64_t, Pending> pending_; ///< keyed by id (FIFO)
    std::vector<Arrival> arrivals_;    ///< virtual mode, un-fired
    std::uint64_t next_id_ = 0;
    std::size_t in_flight_ = 0;
    bool draining_ = false;
    bool stop_ = false;
    std::int64_t virtual_now_ = 0;

    mutable std::mutex metrics_mu_;
    ServerMetrics metrics_;

    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::thread> workers_; ///< real mode only
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_SERVER_HH
