/**
 * @file
 * Request-level serving frontend over the batched inference engine,
 * with self-healing replica management (PR 6).
 *
 * The engine (PR 2/3) answers closed offline batches; this layer is
 * what faces traffic. A "replica" here is the engine's replica
 * *group*: for a multi-chip compiled plan (compiler PR 8) each
 * scheduling slot owns one chip per plan stage, dispatched as a
 * unit — quarantine, spares, probes and chaos degrades all operate
 * on whole groups, never on an individual stage chip. A Server accepts single inference requests
 * (submit() returns a future), coalesces them with a dynamic batcher
 * (flush at max_batch requests or once the oldest waits max_delay_ns),
 * schedules each batch onto a dedicated SushiChip replica through
 * InferenceEngine::runOnReplica, and sheds load with typed
 * rejections once the admission bound on queue depth is hit or a
 * request's deadline has passed. drain()/shutdown() finish all
 * admitted work before stopping; every future is always resolved —
 * including under injected replica crashes.
 *
 * Resilience layer (all policies default OFF; see resilience.hh):
 *
 *  - Replica health: batch outcomes feed per-replica accounts in the
 *    engine; crashes and consecutive-bad-batch streaks quarantine a
 *    replica (it leaves the scheduling rotation), hot spares are
 *    promoted to keep the effective pool size, and quarantined
 *    replicas are probed on an exponential-backoff schedule and
 *    readmitted on probe success.
 *  - Retries: a failed dispatch re-queues the request after an
 *    exponential backoff with *keyed* jitter — the delay before
 *    attempt k of request r is a pure function of (seed, r, k) — up
 *    to the retry budget, then rejects Reject::ReplicaFailure.
 *  - Hedging: requests at deadline-critical priorities get a
 *    duplicate dispatch once their primary batch has been in flight
 *    hedge.delay_ns; the first completion wins and the loser is
 *    cancelled (still queued) or discarded (already running).
 *  - Circuit breaker: consecutive batch failures trip the per-model
 *    breaker Open and admissions fast-fail with Reject::BreakerOpen
 *    (a retry storm becomes typed rejections); after open_ns a
 *    HalfOpen phase lets a few trial batches decide open vs closed.
 *  - Chaos: a seed-deterministic ChaosEngine (chaos.hh) is consulted
 *    at every dispatch and can crash/stall/slow/fault a batch or
 *    fail an NPE (SushiChip::markNpeFailed). Under the virtual clock
 *    an entire chaos campaign replays byte-identically at any
 *    worker-thread count.
 *
 * Two clock modes:
 *
 *  - ClockMode::Real — wall-clock serving. One worker thread per
 *    replica pulls batches from the shared pending queue; timestamps
 *    are steady_clock nanoseconds since construction. Quarantined
 *    replicas' workers run their own probe schedule; spare workers
 *    sleep until promoted. Throughput is whatever the host delivers;
 *    no byte-determinism is promised (chaos service-time scaling is
 *    virtual-only; crashes/faults/degrades apply in both modes).
 *
 *  - ClockMode::Virtual — deterministic discrete-event serving for
 *    tests and the open-loop benches. Requests carry logical arrival
 *    times (submitAt), runVirtual() plays the whole timeline:
 *    batches form at exact logical instants, service time is the
 *    batch's *modelled chip time* (est_time_ps scaled by
 *    virtual_ns_per_ps, then by the chaos service scale), and
 *    completions/rejections/retries/hedges/probes are processed in a
 *    fixed order. Same seed + config => byte-identical
 *    ServerMetrics::toJson() for ANY worker-thread count.
 *
 * Batcher state machine (both modes share it):
 *
 *        +--------- submit/submitAt ----------+
 *        v                                    |
 *   [Accumulating] --size >= max_batch--> [Flush(size)]
 *        | oldest wait >= max_delay_ns -> [Flush(delay)]
 *        | draining && nonempty -------> [Flush(drain)]
 *        | deadline passed ------------> reject(DeadlineExceeded)
 *        | depth == max_queue at admit -> reject(QueueFull)
 *        | breaker open at admit ------> reject(BreakerOpen)
 *
 * A flush pops up to max_batch requests in (priority desc, arrival
 * asc) order onto the first free *active* replica; expired requests
 * are shed at pop time, never executed.
 */

#ifndef SUSHI_SERVE_SERVER_HH
#define SUSHI_SERVE_SERVER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/inference_engine.hh"
#include "serve/chaos.hh"
#include "serve/metrics.hh"
#include "serve/resilience.hh"

namespace sushi::serve {

/** "No deadline" sentinel for RequestOptions::deadline_ns. */
constexpr std::int64_t kNoDeadline = INT64_MAX;

/** Clock domain the server schedules in. */
enum class ClockMode { Real, Virtual };

/** Why a request was rejected instead of served. */
enum class Reject : std::uint8_t {
    None = 0,         ///< served
    QueueFull,        ///< admission bound hit
    DeadlineExceeded, ///< deadline passed before execution
    ShuttingDown,     ///< submitted after drain()/shutdown()
    BreakerOpen,      ///< circuit breaker fast-fail
    ReplicaFailure,   ///< dispatch failed and retry budget exhausted
};

/** Stable lowercase name for a rejection cause. */
const char *rejectName(Reject r);

/** Serving knobs. */
struct ServerConfig
{
    /** Replica pool configuration (EngineConfig::replicas sizes the
     *  *active* pool; 0 selects parallelWorkers(); hot_spares are
     *  added on top). */
    engine::EngineConfig engine;

    /** Extra replicas instantiated but held out of rotation; one is
     *  promoted whenever an active replica is quarantined. */
    int hot_spares = 0;

    /** Flush a batch once this many requests have coalesced. */
    std::size_t max_batch = 8;

    /** Flush a partial batch once its oldest request has waited this
     *  long (the queue-delay knob of the dynamic batcher). */
    std::int64_t max_delay_ns = 200'000;

    /** Admission bound: submissions beyond this many queued requests
     *  are rejected with Reject::QueueFull. (Retry and hedge
     *  re-queues bypass the bound — they recover already-admitted
     *  work.) */
    std::size_t max_queue = 1024;

    ClockMode clock = ClockMode::Real;

    /** Virtual mode: service nanoseconds charged per modelled chip
     *  picosecond (host/IO surcharge over the raw die time). */
    double virtual_ns_per_ps = 1.0;

    /** Virtual mode: fixed per-batch dispatch overhead. */
    std::int64_t batch_overhead_ns = 0;

    /** Virtual mode: cap on worker threads executing simultaneous
     *  batches (0 = pool size). Metrics are byte-identical for every
     *  value — the determinism knob. */
    unsigned max_threads = 0;

    /// @name Resilience policies (all default off / no-op).
    /// @{
    RetryPolicy retry;
    HedgePolicy hedge;
    BreakerPolicy breaker;
    HealthPolicy health;
    ChaosPolicy chaos;

    /** Seed of the keyed retry-jitter draws. */
    std::uint64_t resilience_seed = 1;
    /// @}
};

/** Per-request scheduling options. */
struct RequestOptions
{
    /** Absolute deadline in the server's clock domain; the request
     *  is shed (never executed) once this instant passes. */
    std::int64_t deadline_ns = kNoDeadline;

    /** Higher priorities are dequeued first; ties serve in arrival
     *  order. */
    int priority = 0;
};

/** What a request's future resolves to. */
struct Response
{
    engine::SampleResult result; ///< empty when rejected
    Reject rejected = Reject::None;

    bool ok() const { return rejected == Reject::None; }

    std::uint64_t id = 0;        ///< admission sequence number
    std::int64_t submit_ns = 0;  ///< admission instant
    std::int64_t dispatch_ns = 0; ///< batch formation instant
    std::int64_t complete_ns = 0; ///< completion / rejection instant
    bool deadline_missed = false; ///< served, but past its deadline
    int replica = -1;            ///< replica that served it
    int batch_size = 0;          ///< size of its batch
    int retries = 0;             ///< failed dispatches beforehand
    bool hedged = false;         ///< a hedge copy was launched

    std::int64_t queueNs() const { return dispatch_ns - submit_ns; }
    std::int64_t serviceNs() const
    {
        return complete_ns - dispatch_ns;
    }
    std::int64_t totalNs() const { return complete_ns - submit_ns; }
};

/** The request-level inference server. */
class Server
{
  public:
    Server(std::shared_ptr<const engine::CompiledModel> model,
           const ServerConfig &cfg = {});
    ~Server(); ///< shutdown(): resolves every outstanding future

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    const ServerConfig &config() const { return cfg_; }

    /** Total replica pool (active target + hot spares). */
    int replicas() const { return engine_.replicas(); }

    /** The engine (per-replica accounts live there). */
    const engine::InferenceEngine &engine() const { return engine_; }

    /** Current time in the server's clock domain (ns). */
    std::int64_t now() const;

    /**
     * Submit one request; never blocks. The future always resolves —
     * with a result, or with a typed rejection. In virtual mode this
     * is submitAt(now()).
     */
    std::future<Response> submit(engine::Sample sample,
                                 const RequestOptions &opts = {});

    /**
     * Virtual mode: enqueue a request arriving at @p arrival_ns.
     * Admission control runs when the arrival fires inside
     * runVirtual(), against the queue state at that logical instant.
     */
    std::future<Response> submitAt(std::int64_t arrival_ns,
                                   engine::Sample sample,
                                   const RequestOptions &opts = {});

    /**
     * Virtual mode: play the timeline until every enqueued arrival
     * has been served or shed. Single driver thread; batch execution
     * fans out over the worker pool (cfg.max_threads wide).
     */
    void runVirtual();

    /**
     * Stop admitting (later submissions resolve ShuttingDown) and
     * wait until every queued, retrying and in-flight request has
     * resolved. Partial batches flush immediately. Idempotent.
     */
    void drain();

    /** drain(), then stop and join the worker threads. Idempotent;
     *  the destructor calls it. */
    void shutdown();

    /** Coherent snapshot of the serving metrics. */
    ServerMetrics metrics() const;

    /** Current lifecycle state of replica @p r. */
    ReplicaState replicaState(int r) const;

    /** Current circuit-breaker state. */
    BreakerState breakerState() const;

  private:
    /** Why a batch flushed. */
    enum class FlushCause : std::uint8_t { Size, Delay, Drain };

    /** Shared per-request bookkeeping: the promise plus the copy /
     *  retry / hedge state every live copy of the request points at. */
    struct ReqState
    {
        std::promise<Response> promise;
        bool resolved = false;
        int failures = 0; ///< failed dispatches (retry budget)
        int live = 0;     ///< copies queued / running / backing off
        bool hedged = false; ///< hedge copy launched
    };

    /** One queued copy of a request. */
    struct Pending
    {
        std::uint64_t id = 0;         ///< per-copy admission key
        std::uint64_t request_id = 0; ///< original admission id
        int priority = 0;
        std::int64_t submit_ns = 0; ///< original arrival (latency t0)
        std::int64_t queued_ns = 0; ///< this copy's enqueue instant
        std::int64_t deadline_ns = kNoDeadline;
        bool is_hedge = false;
        std::shared_ptr<const engine::Sample> sample;
        std::shared_ptr<ReqState> state;
    };

    struct Batch
    {
        int replica = -1;
        std::int64_t dispatch_ns = 0;
        FlushCause cause = FlushCause::Size;
        bool half_open_trial = false;
        ChaosEngine::BatchFate fate;
        std::vector<Pending> reqs;
    };

    /** Result of executing (or failing to execute) one batch. */
    struct Outcome
    {
        bool ok = true;
        engine::ReplicaRun run; ///< empty when !ok
    };

    /** A virtual-mode arrival waiting for its logical instant. */
    struct Arrival
    {
        std::int64_t arrival_ns = 0;
        Pending req;
    };

    /** A failed request waiting out its retry backoff. */
    struct RetryEntry
    {
        std::int64_t ready_ns = 0;
        Pending req;
    };

    /** An armed hedge: fires a duplicate dispatch of the request
     *  unless it resolved first. */
    struct HedgeTimer
    {
        std::int64_t fire_ns = 0;
        int attempt = 0; ///< state->failures when armed; a mismatch
                         ///< at fire time means the dispatch failed
                         ///< and the timer is void
        Pending proto; ///< copy inserted on fire (id assigned then)
    };

    struct RepHealth
    {
        ReplicaState state = ReplicaState::Active;
        int consecutive_bad = 0; ///< failures + slow batches
        std::int64_t probe_at = 0;
        std::int64_t probe_delay = 0;
    };

    struct Breaker
    {
        BreakerState state = BreakerState::Closed;
        int consecutive_failures = 0;
        std::int64_t open_until = 0;
        int half_open_inflight = 0;
        int half_open_successes = 0;
    };

    // Shared batcher/admission logic (mu_ held).
    std::future<Response> submitAtLocked(std::int64_t arrival_ns,
                                         engine::Sample sample,
                                         const RequestOptions &opts);
    void admitLocked(Pending &&req, std::int64_t t);
    void resolveReject(Pending &req, Reject reason,
                       std::int64_t event_ns);
    void purgeCopiesLocked(const std::shared_ptr<ReqState> &state);
    void shedExpiredLocked(std::int64_t t);
    bool flushReadyLocked(std::int64_t t, FlushCause *cause) const;
    bool replicaEligibleLocked(int replica) const;
    Batch takeBatchLocked(int replica, std::int64_t t,
                          FlushCause cause);
    std::int64_t oldestQueuedLocked() const;
    std::int64_t nearestDeadlineLocked() const;

    // Resilience machinery (mu_ held).
    void breakerAdvanceLocked(std::int64_t t);
    void breakerOnOutcomeLocked(bool ok, bool trial, std::int64_t t);
    void applyChaosAtDispatchLocked(Batch &batch);
    void quarantineLocked(int replica, std::int64_t t);
    void runProbeLocked(int replica, std::int64_t t);
    void fireRetriesLocked(std::int64_t t);
    void fireHedgesLocked(std::int64_t t);
    void scheduleHedgeLocked(const Batch &batch);
    std::int64_t backoffNs(std::uint64_t request_id, int attempt)
        const;
    std::int64_t nextRetryNsLocked() const;
    std::int64_t nextHedgeNsLocked() const;
    std::int64_t nextProbeNsLocked() const;
    int activeCountLocked() const;
    bool workPendingLocked() const;

    // Execution + outcome (mu_ NOT held for executeBatch).
    Outcome executeBatch(Batch &batch);
    std::int64_t virtualServiceNs(const Batch &batch,
                                  const Outcome &outcome) const;
    void processOutcomeLocked(Batch &batch, Outcome &outcome,
                              std::int64_t complete_ns);

    void workerMain(int replica);
    void runVirtualLocked(std::unique_lock<std::mutex> &lock);
    std::int64_t realNow() const;

    std::shared_ptr<const engine::CompiledModel> model_;
    ServerConfig cfg_;
    engine::InferenceEngine engine_;
    ChaosEngine chaos_;
    int target_active_ = 0; ///< active-pool size the server defends

    mutable std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers: queue activity
    std::condition_variable drain_cv_; ///< drain(): progress
    std::map<std::uint64_t, Pending> pending_; ///< keyed by id (FIFO)
    std::vector<Arrival> arrivals_;    ///< virtual mode, un-fired
    std::vector<RetryEntry> retries_;  ///< backing off
    std::vector<HedgeTimer> hedges_;   ///< armed hedge timers
    std::vector<RepHealth> health_;    ///< per-replica state
    Breaker breaker_;
    std::uint64_t next_id_ = 0;
    std::size_t in_flight_ = 0;
    bool draining_ = false;
    bool stop_ = false;
    std::int64_t virtual_now_ = 0;

    mutable std::mutex metrics_mu_;
    ServerMetrics metrics_;

    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::thread> workers_; ///< real mode only
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_SERVER_HH
