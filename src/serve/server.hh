/**
 * @file
 * Request-level serving frontend over the batched inference engine,
 * with self-healing replica management (PR 6) and a sharded,
 * allocation-light admission path (PR 10).
 *
 * The engine (PR 2/3) answers closed offline batches; this layer is
 * what faces traffic. A "replica" here is the engine's replica
 * *group*: for a multi-chip compiled plan (compiler PR 8) each
 * scheduling slot owns one chip per plan stage, dispatched as a
 * unit — quarantine, spares, probes and chaos degrades all operate
 * on whole groups, never on an individual stage chip. A Server accepts single inference requests
 * (submit() returns a future), coalesces them with a dynamic batcher
 * (flush at max_batch requests or once the oldest waits max_delay_ns),
 * schedules each batch onto a dedicated SushiChip replica through
 * InferenceEngine::runOnReplica, and sheds load with typed
 * rejections once the admission bound on queue depth is hit or a
 * request's deadline has passed. drain()/shutdown() finish all
 * admitted work before stopping; every future is always resolved —
 * including under injected replica crashes.
 *
 * Sharded front-end (PR 10): admission no longer funnels through the
 * scheduler mutex. The pending queue is split over
 * ServerConfig::admission_shards independent shards (default: one
 * per replica), each owning its own mutex, a slab-allocated
 * RequestPool with per-priority FIFO lanes (request_pool.hh), and a
 * MetricsDelta accumulator (metrics.hh). submit() routes by
 * request id (request_id % shards) and touches ONLY that shard:
 * admission control, typed rejections and the submitted/accepted
 * counters all happen under the shard lock, with the global queue
 * bound enforced by one atomic depth counter. Every copy of a
 * request — primary, retry, hedge — routes to the same shard (copies
 * share the request_id), so first-resolution-wins cancellation stays
 * a single-shard operation. Batch formation k-way-merges the shard
 * lanes under all shard locks (taken in ascending index order) and
 * pops exactly max_batch entries in (priority desc, arrival asc)
 * order — O(batch), not O(queue log queue). Shard metric deltas are
 * folded into the ServerMetrics rollup in ascending shard order at
 * snapshot time; every delta field commutes (counters, min/max
 * watermarks, histogram merges), so the rollup — and therefore
 * virtual-mode replay — is byte-identical for ANY shard count.
 *
 * Lock order (strict): scheduler mutex mu_ -> shard mutexes in
 * ascending index (only batch formation holds more than one) ->
 * metrics_mu_. The submit() fast path takes only the owning shard's
 * mutex; mu_ is taken first only when the circuit breaker is
 * enabled (breaker state is central). ReqState fields are guarded
 * by the owning shard's mutex.
 *
 * Resilience layer (all policies default OFF; see resilience.hh):
 *
 *  - Replica health: batch outcomes feed per-replica accounts in the
 *    engine; crashes and consecutive-bad-batch streaks quarantine a
 *    replica (it leaves the scheduling rotation), hot spares are
 *    promoted to keep the effective pool size, and quarantined
 *    replicas are probed on an exponential-backoff schedule and
 *    readmitted on probe success.
 *  - Retries: a failed dispatch re-queues the request after an
 *    exponential backoff with *keyed* jitter — the delay before
 *    attempt k of request r is a pure function of (seed, r, k) — up
 *    to the retry budget, then rejects Reject::ReplicaFailure.
 *  - Hedging: requests at deadline-critical priorities get a
 *    duplicate dispatch once their primary batch has been in flight
 *    hedge.delay_ns; the first completion wins and the loser is
 *    cancelled (still queued) or discarded (already running).
 *  - Circuit breaker: consecutive batch failures trip the per-model
 *    breaker Open and admissions fast-fail with Reject::BreakerOpen
 *    (a retry storm becomes typed rejections); after open_ns a
 *    HalfOpen phase lets a few trial batches decide open vs closed.
 *  - Chaos: a seed-deterministic ChaosEngine (chaos.hh) is consulted
 *    at every dispatch and can crash/stall/slow/fault a batch or
 *    fail an NPE (SushiChip::markNpeFailed). Under the virtual clock
 *    an entire chaos campaign replays byte-identically at any
 *    worker-thread count.
 *
 * Two clock modes:
 *
 *  - ClockMode::Real — wall-clock serving. One worker thread per
 *    replica pulls batches from the sharded pending queue; timestamps
 *    are steady_clock nanoseconds since construction. Quarantined
 *    replicas' workers run their own probe schedule; spare workers
 *    sleep until promoted. Throughput is whatever the host delivers;
 *    no byte-determinism is promised (chaos service-time scaling is
 *    virtual-only; crashes/faults/degrades apply in both modes).
 *
 *  - ClockMode::Virtual — deterministic discrete-event serving for
 *    tests and the open-loop benches. Requests carry logical arrival
 *    times (submitAt), runVirtual() plays the whole timeline:
 *    batches form at exact logical instants, service time is the
 *    batch's *modelled chip time* (est_time_ps scaled by
 *    virtual_ns_per_ps, then by the chaos service scale), and
 *    completions/rejections/retries/hedges/probes are processed in a
 *    fixed order. Same seed + config => byte-identical
 *    ServerMetrics::toJson() for ANY worker-thread count AND any
 *    admission-shard count.
 *
 * Batcher state machine (both modes share it):
 *
 *        +--------- submit/submitAt ----------+
 *        v                                    |
 *   [Accumulating] --size >= max_batch--> [Flush(size)]
 *        | oldest wait >= max_delay_ns -> [Flush(delay)]
 *        | draining && nonempty -------> [Flush(drain)]
 *        | deadline passed ------------> reject(DeadlineExceeded)
 *        | depth == max_queue at admit -> reject(QueueFull)
 *        | breaker open at admit ------> reject(BreakerOpen)
 *
 * A flush pops up to max_batch requests in (priority desc, arrival
 * asc) order onto the first free *active* replica; expired requests
 * are shed at pop time, never executed.
 */

#ifndef SUSHI_SERVE_SERVER_HH
#define SUSHI_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/inference_engine.hh"
#include "serve/chaos.hh"
#include "serve/metrics.hh"
#include "serve/request.hh"
#include "serve/request_pool.hh"
#include "serve/resilience.hh"

namespace sushi::serve {

/** Serving knobs. */
struct ServerConfig
{
    /** Replica pool configuration (EngineConfig::replicas sizes the
     *  *active* pool; 0 selects parallelWorkers(); hot_spares are
     *  added on top). */
    engine::EngineConfig engine;

    /** Extra replicas instantiated but held out of rotation; one is
     *  promoted whenever an active replica is quarantined. */
    int hot_spares = 0;

    /** Flush a batch once this many requests have coalesced. */
    std::size_t max_batch = 8;

    /** Flush a partial batch once its oldest request has waited this
     *  long (the queue-delay knob of the dynamic batcher). */
    std::int64_t max_delay_ns = 200'000;

    /** Admission bound: submissions beyond this many queued requests
     *  are rejected with Reject::QueueFull. (Retry and hedge
     *  re-queues bypass the bound — they recover already-admitted
     *  work.) */
    std::size_t max_queue = 1024;

    /**
     * Independent admission shards of the front-end (0 = one per
     * replica in the pool). Each shard has its own lock, pending
     * lanes and metrics delta; submit() contends only on the shard
     * that owns the request id. Purely a throughput knob: virtual
     * replay and the metrics rollup are byte-identical for every
     * value.
     */
    int admission_shards = 0;

    ClockMode clock = ClockMode::Real;

    /** Virtual mode: service nanoseconds charged per modelled chip
     *  picosecond (host/IO surcharge over the raw die time). */
    double virtual_ns_per_ps = 1.0;

    /** Virtual mode: fixed per-batch dispatch overhead. */
    std::int64_t batch_overhead_ns = 0;

    /** Virtual mode: cap on worker threads executing simultaneous
     *  batches (0 = pool size). Metrics are byte-identical for every
     *  value — the determinism knob. */
    unsigned max_threads = 0;

    /// @name Resilience policies (all default off / no-op).
    /// @{
    RetryPolicy retry;
    HedgePolicy hedge;
    BreakerPolicy breaker;
    HealthPolicy health;
    ChaosPolicy chaos;

    /** Seed of the keyed retry-jitter draws. */
    std::uint64_t resilience_seed = 1;
    /// @}
};

/** The request-level inference server. */
class Server
{
  public:
    Server(std::shared_ptr<const engine::CompiledModel> model,
           const ServerConfig &cfg = {});
    ~Server(); ///< shutdown(): resolves every outstanding future

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    const ServerConfig &config() const { return cfg_; }

    /** Total replica pool (active target + hot spares). */
    int replicas() const { return engine_.replicas(); }

    /** Admission shards the front-end was built with. */
    int admissionShards() const
    {
        return static_cast<int>(shards_.size());
    }

    /** The engine (per-replica accounts live there). */
    const engine::InferenceEngine &engine() const { return engine_; }

    /** Current time in the server's clock domain (ns). */
    std::int64_t now() const;

    /**
     * Submit one request; never blocks. The future always resolves —
     * with a result, or with a typed rejection. In virtual mode this
     * is submitAt(now()); in real mode the fast path locks only the
     * owning admission shard.
     */
    std::future<Response> submit(engine::Sample sample,
                                 const RequestOptions &opts = {});

    /**
     * Virtual mode: enqueue a request arriving at @p arrival_ns.
     * Admission control runs when the arrival fires inside
     * runVirtual(), against the queue state at that logical instant.
     */
    std::future<Response> submitAt(std::int64_t arrival_ns,
                                   engine::Sample sample,
                                   const RequestOptions &opts = {});

    /**
     * Virtual mode: play the timeline until every enqueued arrival
     * has been served or shed. Single driver thread; batch execution
     * fans out over the worker pool (cfg.max_threads wide).
     */
    void runVirtual();

    /**
     * Stop admitting (later submissions resolve ShuttingDown) and
     * wait until every queued, retrying and in-flight request has
     * resolved. Partial batches flush immediately. Idempotent.
     */
    void drain();

    /** drain(), then stop and join the worker threads. Idempotent;
     *  the destructor calls it. */
    void shutdown();

    /** Coherent snapshot of the serving metrics (shard deltas are
     *  folded into the rollup, in ascending shard order, first). */
    ServerMetrics metrics() const;

    /** Current lifecycle state of replica @p r. */
    ReplicaState replicaState(int r) const;

    /** Current circuit-breaker state. */
    BreakerState breakerState() const;

  private:
    /** Why a batch flushed. */
    enum class FlushCause : std::uint8_t { Size, Delay, Drain };

    /**
     * One admission shard: its lock, its slice of the pending queue,
     * and its metrics accumulator. All copies of request r live in
     * shard (r.request_id % shards). ReqState fields of those
     * requests are guarded by this mutex.
     */
    struct Shard
    {
        mutable std::mutex mu;
        RequestPool pool;   ///< queued copies owned by this shard
        MetricsDelta delta; ///< folded into metrics_ at snapshot
    };

    struct Batch
    {
        int replica = -1;
        std::int64_t dispatch_ns = 0;
        FlushCause cause = FlushCause::Size;
        bool half_open_trial = false;
        ChaosEngine::BatchFate fate;
        std::vector<PendingReq> reqs;
    };

    /** Result of executing (or failing to execute) one batch. */
    struct Outcome
    {
        bool ok = true;
        engine::ReplicaRun run; ///< empty when !ok
    };

    /** A virtual-mode arrival waiting for its logical instant. */
    struct Arrival
    {
        std::int64_t arrival_ns = 0;
        PendingReq req;
    };

    /** A failed request waiting out its retry backoff. */
    struct RetryEntry
    {
        std::int64_t ready_ns = 0;
        PendingReq req;
    };

    /** An armed hedge: fires a duplicate dispatch of the request
     *  unless it resolved first. */
    struct HedgeTimer
    {
        std::int64_t fire_ns = 0;
        int attempt = 0; ///< state->failures when armed; a mismatch
                         ///< at fire time means the dispatch failed
                         ///< and the timer is void
        PendingReq proto; ///< copy inserted on fire (id assigned then)
    };

    struct RepHealth
    {
        ReplicaState state = ReplicaState::Active;
        int consecutive_bad = 0; ///< failures + slow batches
        std::int64_t probe_at = 0;
        std::int64_t probe_delay = 0;
    };

    struct Breaker
    {
        BreakerState state = BreakerState::Closed;
        int consecutive_failures = 0;
        std::int64_t open_until = 0;
        int half_open_inflight = 0;
        int half_open_successes = 0;
    };

    /** Shard owning every copy of request @p request_id. */
    Shard &shardOf(std::uint64_t request_id) const
    {
        return *shards_[static_cast<std::size_t>(
            request_id % shards_.size())];
    }

    // ---- Admission path (owning shard's lock held unless noted).
    std::future<Response> submitAtLocked(std::int64_t arrival_ns,
                                         engine::Sample sample,
                                         const RequestOptions &opts);
    PendingReq makeRequest(engine::Sample &&sample,
                           const RequestOptions &opts,
                           std::int64_t t);
    /** Claim one queue slot against max_queue (exact global bound;
     *  no lock needed — the depth counter is atomic). */
    bool tryReserveQueueSlot();
    void admitShardLocked(Shard &sh, PendingReq &&req,
                          std::int64_t t);
    /** A resolution deferred past the batch's central metrics
     *  section: "my future completed" must imply a subsequent
     *  metrics() snapshot already shows the whole batch (flush
     *  cause, batch counters) — so outcome processing records
     *  first and resolves last. */
    struct Resolution
    {
        std::shared_ptr<ReqState> state;
        Response resp;
    };

    /** Record the typed rejection in the shard delta and resolve
     *  the promise (or stash it on @p defer when non-null). Does
     *  NOT purge sibling copies. */
    void fulfillRejectLocked(Shard &sh, PendingReq &req,
                             Reject reason, std::int64_t event_ns,
                             std::vector<Resolution> *defer =
                                 nullptr);
    /** fulfillRejectLocked + purge of still-queued sibling copies in
     *  the owning shard. */
    void rejectQueuedLocked(Shard &sh, PendingReq &req, Reject reason,
                            std::int64_t event_ns);
    void purgeShardCopiesLocked(
        Shard &sh, const std::shared_ptr<ReqState> &state);
    /** Drop retry entries / hedge timers of a resolved request.
     *  Requires mu_ AND the owning shard's lock. */
    void reapTimersLocked(const std::shared_ptr<ReqState> &state);
    /** Shed expired entries of one shard (shard lock held). @p reap
     *  additionally drops the resolved requests' central timers and
     *  requires mu_. */
    void shedShardLocked(Shard &sh, std::int64_t t, bool reap);
    void shedExpiredAllLocked(std::int64_t t);
    /** Notify sleeping workers — called lock-free after an admit. */
    void wakeWorkers();

    // ---- Batcher (mu_ held; these take shard locks internally).
    bool flushReadyLocked(std::int64_t t, FlushCause *cause) const;
    bool replicaEligibleLocked(int replica) const;
    /** K-way merge over the shard lanes under ALL shard locks
     *  (ascending); pops up to max_batch in (priority desc, id asc)
     *  order. May return an empty batch if a concurrent shed raced
     *  the flush decision. */
    Batch takeBatchLocked(int replica, std::int64_t t,
                          FlushCause cause);
    std::int64_t oldestQueuedAnyLocked() const;
    std::int64_t nearestDeadlineAnyLocked() const;

    // ---- Resilience machinery (mu_ held).
    void breakerAdvanceLocked(std::int64_t t);
    void breakerOnOutcomeLocked(bool ok, bool trial, std::int64_t t);
    void applyChaosAtDispatchLocked(Batch &batch);
    void quarantineLocked(int replica, std::int64_t t);
    void runProbeLocked(int replica, std::int64_t t);
    void fireRetriesLocked(std::int64_t t);
    void fireHedgesLocked(std::int64_t t);
    void scheduleHedgeLocked(const Batch &batch);
    std::int64_t backoffNs(std::uint64_t request_id, int attempt)
        const;
    std::int64_t nextRetryNsLocked() const;
    std::int64_t nextHedgeNsLocked() const;
    std::int64_t nextProbeNsLocked() const;
    int activeCountLocked() const;
    bool workPendingLocked() const;

    // ---- Execution + outcome (mu_ NOT held for executeBatch).
    Outcome executeBatch(Batch &batch);
    std::int64_t virtualServiceNs(const Batch &batch,
                                  const Outcome &outcome) const;
    void processOutcomeLocked(Batch &batch, Outcome &outcome,
                              std::int64_t complete_ns);

    void workerMain(int replica);
    void runVirtualLocked(std::unique_lock<std::mutex> &lock);
    std::int64_t realNow() const;

    std::shared_ptr<const engine::CompiledModel> model_;
    ServerConfig cfg_;
    engine::InferenceEngine engine_;
    ChaosEngine chaos_;
    int target_active_ = 0; ///< active-pool size the server defends

    /** Admission shards (fixed at construction; unique_ptr keeps
     *  the mutexes pinned). */
    std::vector<std::unique_ptr<Shard>> shards_;

    /// @name Lock-free admission state.
    /// @{
    std::atomic<std::uint64_t> next_id_{0};
    std::atomic<std::size_t> queued_{0}; ///< live entries, all shards
    std::atomic<bool> draining_{false};
    std::atomic<bool> stop_{false};
    std::atomic<int> sleepers_{0}; ///< workers parked on work_cv_
    /// @}

    mutable std::mutex mu_; ///< scheduler state below
    std::condition_variable work_cv_;  ///< workers: queue activity
    std::condition_variable drain_cv_; ///< drain(): progress
    std::vector<Arrival> arrivals_;    ///< virtual mode, un-fired
    std::vector<RetryEntry> retries_;  ///< backing off
    std::vector<HedgeTimer> hedges_;   ///< armed hedge timers
    std::vector<RepHealth> health_;    ///< per-replica state
    Breaker breaker_;
    std::size_t in_flight_ = 0;
    std::int64_t virtual_now_ = 0;

    mutable std::mutex metrics_mu_;
    mutable ServerMetrics metrics_; ///< rollup (deltas fold here)

    std::chrono::steady_clock::time_point epoch_;
    std::vector<std::thread> workers_; ///< real mode only
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_SERVER_HH
