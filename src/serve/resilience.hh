/**
 * @file
 * Resilience policies of the self-healing serving layer.
 *
 * The SFQ substrate makes chips fast but fragile: flux trapping, JJ
 * margin drift and fabrication yield mean a deployed fleet must
 * expect whole-chip and per-NPE failures (DESIGN.md §4.5). These
 * policies describe how the Server reacts:
 *
 *  - RetryPolicy      — per-request retry budget with exponential
 *                       backoff and *keyed* jitter: the delay before
 *                       attempt k of request r is a pure function of
 *                       (seed, r, k), so retry schedules replay
 *                       byte-identically at any thread count.
 *  - HedgePolicy      — deadline-critical priorities get a duplicate
 *                       dispatch onto a second replica once the
 *                       primary has been in flight for delay_ns;
 *                       first completion wins, the loser is
 *                       cancelled (if still queued) or discarded.
 *  - BreakerPolicy    — a per-model circuit breaker. Consecutive
 *                       batch failures trip it Open; admissions then
 *                       fast-fail with Reject::BreakerOpen instead
 *                       of queueing into a retry storm. After
 *                       open_ns it goes HalfOpen and lets a few
 *                       trial batches through; success closes it.
 *  - HealthPolicy     — failure detection thresholds: consecutive
 *                       bad batches (failures, or batches slower
 *                       than slow_batch_ns) quarantine a replica;
 *                       quarantined replicas are probed on an
 *                       exponential-backoff schedule and readmitted
 *                       on probe success. Hot spares are promoted
 *                       so the effective pool keeps its size.
 *
 * Every policy defaults to OFF (no retries, no hedging, breaker
 * disabled, quarantine after 3 failures but nothing injects
 * failures), so a plain Server behaves exactly as before PR 6.
 */

#ifndef SUSHI_SERVE_RESILIENCE_HH
#define SUSHI_SERVE_RESILIENCE_HH

#include <climits>
#include <cstdint>

namespace sushi::serve {

/** Lifecycle state of one replica in the serving pool. */
enum class ReplicaState : std::uint8_t {
    Active,      ///< in the scheduling rotation
    Quarantined, ///< failed out; awaiting probe-and-readmit
    Spare,       ///< healthy but held out of rotation (hot spare)
};

/** Stable lowercase name of a replica state. */
const char *replicaStateName(ReplicaState s);

/** Circuit-breaker state (the classic three-state machine). */
enum class BreakerState : std::uint8_t {
    Closed,   ///< normal admission
    Open,     ///< fast-fail all admissions
    HalfOpen, ///< limited trial batches decide open vs closed
};

/** Stable lowercase name of a breaker state. */
const char *breakerStateName(BreakerState s);

/** Per-request retry budget with deterministic backoff. */
struct RetryPolicy
{
    /** Retries allowed after the first failed attempt (0 = a failed
     *  request rejects immediately with Reject::ReplicaFailure). */
    int max_retries = 0;

    /** Backoff before retry k (1-based) is backoff_ns << (k-1),
     *  capped at backoff_max_ns, then jittered. */
    std::int64_t backoff_ns = 100'000;
    std::int64_t backoff_max_ns = 10'000'000;

    /** Backoff is scaled by a keyed uniform draw in
     *  [1 - jitter, 1 + jitter]; 0 disables jitter. */
    double jitter = 0.5;

    bool enabled() const { return max_retries > 0; }
};

/** Hedged duplicate dispatch for deadline-critical priorities. */
struct HedgePolicy
{
    /** Requests with priority >= priority_floor are hedge-eligible
     *  (INT_MAX disables hedging entirely). */
    int priority_floor = INT_MAX;

    /** A hedge copy is enqueued once the primary dispatch has been
     *  in flight this long without completing. */
    std::int64_t delay_ns = 1'000'000;

    bool enabled() const { return priority_floor != INT_MAX; }
};

/** Per-model circuit breaker thresholds. */
struct BreakerPolicy
{
    /** Consecutive batch failures that trip Closed -> Open
     *  (0 disables the breaker). */
    int failure_threshold = 0;

    /** Time spent Open before probing HalfOpen. */
    std::int64_t open_ns = 5'000'000;

    /** Trial batches admitted in HalfOpen; that many consecutive
     *  successes close the breaker, any failure re-opens it. */
    int half_open_probes = 2;

    bool enabled() const { return failure_threshold > 0; }
};

/** Replica failure detection and probe-and-readmit schedule. */
struct HealthPolicy
{
    /** Consecutive bad batches (failure or slow) that quarantine a
     *  replica. Chaos crashes quarantine immediately regardless. */
    int quarantine_after = 3;

    /** A successful batch slower than this counts as "bad" for the
     *  consecutive-failure detector (slow-degrade detection;
     *  INT64_MAX disables the latency signal). */
    std::int64_t slow_batch_ns = INT64_MAX;

    /** First probe fires this long after quarantine; each failed
     *  probe multiplies the delay by probe_backoff up to the cap. */
    std::int64_t probe_delay_ns = 1'000'000;
    double probe_backoff = 2.0;
    std::int64_t probe_delay_max_ns = 64'000'000;
};

} // namespace sushi::serve

#endif // SUSHI_SERVE_RESILIENCE_HH
