/**
 * @file
 * Poisson spike encoder (paper Sec. 6: "the input data is generated
 * using the Poisson encoder").
 *
 * Each pixel intensity p in [0, 1] emits a spike at each time step
 * with probability p, independently across steps — rate coding. The
 * encoder is seeded, so every experiment sees the same spike trains.
 */

#ifndef SUSHI_SNN_ENCODER_HH
#define SUSHI_SNN_ENCODER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "snn/tensor.hh"

namespace sushi::snn {

/** Poisson (Bernoulli-per-step) rate encoder. */
class PoissonEncoder
{
  public:
    explicit PoissonEncoder(std::uint64_t seed = 1);

    /**
     * Encode one image into T binary spike frames.
     * @param pixels intensities in [0, 1]
     * @param t_steps number of time steps
     * @return [t_steps x pixels.size()] matrix of 0/1 floats
     */
    Tensor encode(const std::vector<float> &pixels, int t_steps);

    /**
     * Encode a batch: out[t] is a [batch x dim] 0/1 matrix.
     * @param images batch of images as rows of a tensor
     */
    std::vector<Tensor> encodeBatch(const Tensor &images, int t_steps);

  private:
    Rng rng_;
};

} // namespace sushi::snn

#endif // SUSHI_SNN_ENCODER_HH
