#include "snn/train.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "snn/binarize.hh"

namespace sushi::snn {

Adam::Adam(std::size_t size, float lr, float beta1, float beta2,
           float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      m_(size, 0.0f), v_(size, 0.0f)
{
}

void
Adam::step(float *params, const float *grads, std::size_t size)
{
    sushi_assert(size == m_.size());
    ++t_;
    const float bc1 =
        1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 =
        1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < size; ++i) {
        const float g = grads[i];
        m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * g;
        v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * g * g;
        const float mhat = m_[i] / bc1;
        const float vhat = v_[i] / bc2;
        params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
}

Trainer::Trainer(SnnMlp &net, const TrainConfig &cfg)
    : net_(net), cfg_(cfg),
      opt_w1_(net.w1.size(), cfg.lr),
      opt_b1_(net.b1.size(), cfg.lr),
      opt_w2_(net.w2.size(), cfg.lr),
      opt_b2_(net.b2.size(), cfg.lr)
{
}

std::pair<double, std::size_t>
Trainer::step(const std::vector<Tensor> &frames,
              const std::vector<int> &labels)
{
    const SnnConfig &cfg = net_.config();
    const std::size_t batch = frames[0].rows();
    const int t_steps = cfg.t_steps;
    const float theta = cfg.threshold;
    sushi_assert(labels.size() == batch);

    // Binarization-aware forward: run with the XNOR-Net effective
    // weights; gradients flow to the float shadow weights (STE).
    Tensor eff_w1, eff_w2;
    if (cfg_.binary_aware) {
        eff_w1 = binaryEffectiveWeights(net_.w1);
        eff_w2 = binaryEffectiveWeights(net_.w2);
    }
    const Tensor &fw1 = cfg_.binary_aware ? eff_w1 : net_.w1;
    const Tensor &fw2 = cfg_.binary_aware ? eff_w2 : net_.w2;

    ForwardTrace trace;
    const Tensor counts = net_.forwardWith(fw1, fw2, frames, &trace);

    // Rate-coded MSE loss: L = mean((counts/T - onehot)^2).
    const double denom =
        static_cast<double>(batch) * static_cast<double>(cfg.output);
    double loss = 0.0;
    std::size_t correct = 0;
    Tensor dcounts(batch, cfg.output); // dL/dcounts
    for (std::size_t b = 0; b < batch; ++b) {
        const float *row = counts.row(b);
        int best = 0;
        for (std::size_t c = 0; c < cfg.output; ++c) {
            const float rate =
                row[c] / static_cast<float>(t_steps);
            const float target =
                labels[b] == static_cast<int>(c) ? 1.0f : 0.0f;
            const float err = rate - target;
            loss += static_cast<double>(err) * err;
            dcounts.at(b, c) =
                2.0f * err /
                static_cast<float>(denom * t_steps);
            if (row[c] > row[static_cast<std::size_t>(best)])
                best = static_cast<int>(c);
        }
        correct += best == labels[b] ? 1 : 0;
    }
    loss /= denom;

    // BPTT with detached reset: walk time backwards, carrying the
    // membrane gradient gv through v_pre[t] = v_after[t-1] + h[t],
    // v_after = v_pre * (1 - s) (s detached in the reset term).
    Tensor gw1(cfg.hidden, cfg.input), gw2(cfg.output, cfg.hidden);
    std::vector<float> gb1(cfg.hidden, 0.0f), gb2(cfg.output, 0.0f);
    Tensor gv1(batch, cfg.hidden), gv2(batch, cfg.output);
    Tensor dv2(batch, cfg.output), dv1(batch, cfg.hidden);
    Tensor ds1(batch, cfg.hidden);

    for (int t = t_steps - 1; t >= 0; --t) {
        const auto ti = static_cast<std::size_t>(t);
        const Tensor &v2p = trace.v2_pre[ti];
        const Tensor &s2 = trace.s2[ti];
        // dL/dv2_pre = dL/ds2 * surrogate + gv2 * (1 - s2).
        for (std::size_t i = 0; i < dv2.size(); ++i) {
            const float sg = surrogateGrad(
                v2p.data()[i] - theta, cfg.surrogate_alpha);
            dv2.data()[i] =
                dcounts.data()[i] * sg +
                gv2.data()[i] * (1.0f - s2.data()[i]);
        }
        if (cfg.stateless)
            gv2.zero(); // no membrane carry between steps
        else
            gv2 = dv2; // carried to t-1 through the charge equation

        // Through the output linear layer into hidden spikes (the
        // effective weights are what the forward pass used).
        linearBackward(trace.s1[ti], fw2, dv2, gw2, gb2, ds1);

        const Tensor &v1p = trace.v1_pre[ti];
        const Tensor &s1 = trace.s1[ti];
        for (std::size_t i = 0; i < dv1.size(); ++i) {
            const float sg = surrogateGrad(
                v1p.data()[i] - theta, cfg.surrogate_alpha);
            dv1.data()[i] =
                ds1.data()[i] * sg +
                gv1.data()[i] * (1.0f - s1.data()[i]);
        }
        if (cfg.stateless)
            gv1.zero();
        else
            gv1 = dv1;

        // Into the first linear layer (input gradient discarded).
        Tensor dx(batch, cfg.input);
        linearBackward(trace.x[ti], fw1, dv1, gw1, gb1, dx);
    }

    opt_w1_.step(net_.w1.data(), gw1.data(), gw1.size());
    opt_b1_.step(net_.b1.data(), gb1.data(), gb1.size());
    opt_w2_.step(net_.w2.data(), gw2.data(), gw2.size());
    opt_b2_.step(net_.b2.data(), gb2.data(), gb2.size());

    return {loss, correct};
}

TrainStats
Trainer::fit(const Tensor &images, const std::vector<int> &labels)
{
    sushi_assert(images.rows() == labels.size());
    const std::size_t n = images.rows();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(cfg_.shuffle_seed);
    PoissonEncoder encoder(cfg_.encoder_seed);

    TrainStats stats;
    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        // Fisher-Yates shuffle.
        for (std::size_t i = n - 1; i > 0; --i) {
            const std::size_t j = shuffle_rng.below(i + 1);
            std::swap(order[i], order[j]);
        }
        double epoch_loss = 0.0;
        std::size_t epoch_correct = 0, batches = 0;
        for (std::size_t start = 0; start < n;
             start += cfg_.batch) {
            const std::size_t end =
                std::min(n, start + cfg_.batch);
            const std::size_t bsz = end - start;
            Tensor batch_images(bsz, images.cols());
            std::vector<int> batch_labels(bsz);
            for (std::size_t b = 0; b < bsz; ++b) {
                const std::size_t src = order[start + b];
                std::copy_n(images.row(src), images.cols(),
                            batch_images.row(b));
                batch_labels[b] = labels[src];
            }
            auto frames = encoder.encodeBatch(
                batch_images, net_.config().t_steps);
            auto [loss, correct] = step(frames, batch_labels);
            epoch_loss += loss;
            epoch_correct += correct;
            ++batches;
        }
        stats.epoch_loss.push_back(epoch_loss /
                                   static_cast<double>(batches));
        stats.epoch_train_acc.push_back(
            static_cast<double>(epoch_correct) /
            static_cast<double>(n));
        if (cfg_.verbose) {
            sushi_inform("epoch %d: loss %.5f acc %.4f", epoch,
                         stats.epoch_loss.back(),
                         stats.epoch_train_acc.back());
        }
    }
    return stats;
}

double
evaluate(const SnnMlp &net, const Tensor &images,
         const std::vector<int> &labels, std::uint64_t encoder_seed)
{
    sushi_assert(images.rows() == labels.size());
    PoissonEncoder encoder(encoder_seed);
    const std::size_t n = images.rows();
    const std::size_t batch = 256;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < n; start += batch) {
        const std::size_t end = std::min(n, start + batch);
        const std::size_t bsz = end - start;
        Tensor batch_images(bsz, images.cols());
        for (std::size_t b = 0; b < bsz; ++b)
            std::copy_n(images.row(start + b), images.cols(),
                        batch_images.row(b));
        auto frames =
            encoder.encodeBatch(batch_images, net.config().t_steps);
        auto preds = net.predict(frames);
        for (std::size_t b = 0; b < bsz; ++b)
            correct += preds[b] == labels[start + b] ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(n);
}

} // namespace sushi::snn
