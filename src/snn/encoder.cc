#include "snn/encoder.hh"

#include "common/logging.hh"

namespace sushi::snn {

PoissonEncoder::PoissonEncoder(std::uint64_t seed) : rng_(seed) {}

Tensor
PoissonEncoder::encode(const std::vector<float> &pixels, int t_steps)
{
    sushi_assert(t_steps >= 1);
    Tensor out(static_cast<std::size_t>(t_steps), pixels.size());
    for (int t = 0; t < t_steps; ++t) {
        float *row = out.row(static_cast<std::size_t>(t));
        for (std::size_t i = 0; i < pixels.size(); ++i)
            row[i] = rng_.chance(pixels[i]) ? 1.0f : 0.0f;
    }
    return out;
}

std::vector<Tensor>
PoissonEncoder::encodeBatch(const Tensor &images, int t_steps)
{
    sushi_assert(t_steps >= 1);
    std::vector<Tensor> frames;
    frames.reserve(static_cast<std::size_t>(t_steps));
    for (int t = 0; t < t_steps; ++t)
        frames.emplace_back(images.rows(), images.cols());
    for (std::size_t b = 0; b < images.rows(); ++b) {
        const float *img = images.row(b);
        for (int t = 0; t < t_steps; ++t) {
            float *row = frames[static_cast<std::size_t>(t)].row(b);
            for (std::size_t i = 0; i < images.cols(); ++i)
                row[i] = rng_.chance(img[i]) ? 1.0f : 0.0f;
        }
    }
    return frames;
}

} // namespace sushi::snn
