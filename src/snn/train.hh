/**
 * @file
 * Surrogate-gradient BPTT trainer with the Adam optimizer.
 *
 * Mirrors the paper's training setup (Sec. 6): adam, learning rate
 * 1e-3, rate-coded MSE loss against one-hot targets over T time
 * steps, arctan surrogate gradients (the SpikingJelly defaults), and
 * detached reset (gradients do not flow through the hard reset).
 */

#ifndef SUSHI_SNN_TRAIN_HH
#define SUSHI_SNN_TRAIN_HH

#include <cstdint>
#include <vector>

#include "snn/encoder.hh"
#include "snn/network.hh"

namespace sushi::snn {

/** Adam optimizer state for one parameter tensor. */
class Adam
{
  public:
    Adam(std::size_t size, float lr = 1e-3f, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f);

    /** Apply one update: params -= lr * mhat / (sqrt(vhat) + eps). */
    void step(float *params, const float *grads, std::size_t size);

  private:
    float lr_, beta1_, beta2_, eps_;
    long t_ = 0;
    std::vector<float> m_, v_;
};

/** Training hyper-parameters. */
struct TrainConfig
{
    float lr = 1e-3f;
    int epochs = 3;
    std::size_t batch = 64;
    std::uint64_t shuffle_seed = 11;
    std::uint64_t encoder_seed = 7;
    /** Print per-epoch progress via inform(). */
    bool verbose = false;
    /**
     * XNOR-Net binarization-aware training (paper Sec. 5.1): the
     * forward pass runs with alpha * sign(w) effective weights while
     * gradients update the float shadow weights through a
     * straight-through estimator.
     */
    bool binary_aware = true;
};

/** Per-epoch training curve. */
struct TrainStats
{
    std::vector<double> epoch_loss;
    std::vector<double> epoch_train_acc;
};

/** Trains an SnnMlp in place. */
class Trainer
{
  public:
    Trainer(SnnMlp &net, const TrainConfig &cfg);

    /**
     * One gradient step on a batch of pre-encoded frames.
     * @param frames frames[t] is [B x input]
     * @param labels B class indices
     * @return (mse loss, correct predictions)
     */
    std::pair<double, std::size_t>
    step(const std::vector<Tensor> &frames,
         const std::vector<int> &labels);

    /**
     * Full training loop over an image set.
     * @param images [N x input] intensities in [0, 1]
     * @param labels N class indices
     */
    TrainStats fit(const Tensor &images, const std::vector<int> &labels);

  private:
    SnnMlp &net_;
    TrainConfig cfg_;
    Adam opt_w1_, opt_b1_, opt_w2_, opt_b2_;
};

/**
 * Accuracy of @p net on an image set (Poisson-encoded with
 * @p encoder_seed, batched internally).
 */
double evaluate(const SnnMlp &net, const Tensor &images,
                const std::vector<int> &labels,
                std::uint64_t encoder_seed = 99);

} // namespace sushi::snn

#endif // SUSHI_SNN_TRAIN_HH
