#include "snn/model_io.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace sushi::snn {

void
saveBinarySnn(const BinarySnn &net, std::ostream &os)
{
    os << "sushi-ssnn v1\n";
    os << "t_steps " << net.tSteps() << "\n";
    os << "layers " << net.layers().size() << "\n";
    for (const BinaryLayer &layer : net.layers()) {
        os << "layer " << layer.inDim() << " " << layer.outDim()
           << "\n";
        os << "thresholds";
        for (int t : layer.thresholds)
            os << " " << t;
        os << "\n";
        for (const auto &row : layer.weights) {
            os << "row ";
            for (std::int8_t w : row)
                os << (w > 0 ? '+' : '-');
            os << "\n";
        }
    }
}

BinarySnn
loadBinarySnn(std::istream &is)
{
    std::string magic, version;
    is >> magic >> version;
    if (magic != "sushi-ssnn" || version != "v1")
        sushi_fatal("not a sushi-ssnn v1 model");

    std::string key;
    int t_steps = 0;
    std::size_t num_layers = 0;
    is >> key >> t_steps;
    if (key != "t_steps" || t_steps < 1)
        sushi_fatal("bad t_steps record");
    is >> key >> num_layers;
    if (key != "layers" || num_layers == 0)
        sushi_fatal("bad layers record");

    std::vector<BinaryLayer> layers;
    for (std::size_t l = 0; l < num_layers; ++l) {
        std::size_t in_dim = 0, out_dim = 0;
        is >> key >> in_dim >> out_dim;
        if (key != "layer" || in_dim == 0 || out_dim == 0)
            sushi_fatal("bad layer header in layer %zu", l);
        BinaryLayer layer;
        layer.thresholds.resize(out_dim);
        is >> key;
        if (key != "thresholds")
            sushi_fatal("missing thresholds in layer %zu", l);
        for (auto &t : layer.thresholds)
            is >> t;
        layer.weights.resize(out_dim);
        for (std::size_t o = 0; o < out_dim; ++o) {
            std::string signs;
            is >> key >> signs;
            if (key != "row" || signs.size() != in_dim)
                sushi_fatal("bad weight row %zu in layer %zu", o, l);
            auto &row = layer.weights[o];
            row.reserve(in_dim);
            for (char c : signs) {
                if (c != '+' && c != '-')
                    sushi_fatal("bad sign '%c' in layer %zu", c, l);
                row.push_back(c == '+' ? 1 : -1);
            }
        }
        layers.push_back(std::move(layer));
    }
    if (!is)
        sushi_fatal("truncated sushi-ssnn model");
    return BinarySnn::fromLayers(std::move(layers), t_steps);
}

std::string
binarySnnToString(const BinarySnn &net)
{
    std::ostringstream os;
    saveBinarySnn(net, os);
    return os.str();
}

BinarySnn
binarySnnFromString(const std::string &text)
{
    std::istringstream is(text);
    return loadBinarySnn(is);
}

} // namespace sushi::snn
