/**
 * @file
 * Text serialization of binarized SSNN models.
 *
 * A trained, binarized network is the artifact the off-chip encoding
 * phase consumes (Fig. 12(a)); persisting it lets examples and
 * benches train once and reuse, and gives deployments a stable
 * interchange format. The format is line-oriented and human-
 * readable:
 *
 *   sushi-ssnn v1
 *   t_steps <T>
 *   layers <L>
 *   layer <in_dim> <out_dim>
 *   thresholds <t0> <t1> ...
 *   row +--+... (one sign-string row per output neuron)
 */

#ifndef SUSHI_SNN_MODEL_IO_HH
#define SUSHI_SNN_MODEL_IO_HH

#include <iosfwd>
#include <string>

#include "snn/binarize.hh"

namespace sushi::snn {

/** Serialize a binarized network to a stream. */
void saveBinarySnn(const BinarySnn &net, std::ostream &os);

/**
 * Parse a binarized network from a stream.
 * Calls fatal() on malformed input (user data error).
 */
BinarySnn loadBinarySnn(std::istream &is);

/** Convenience: serialize to / parse from a string. */
std::string binarySnnToString(const BinarySnn &net);
BinarySnn binarySnnFromString(const std::string &text);

} // namespace sushi::snn

#endif // SUSHI_SNN_MODEL_IO_HH
