/**
 * @file
 * XNOR-Net binarization and the stateless SSNN model, paper Sec. 5.1.
 *
 * SSNN maps the trained float SNN onto {-1, +1} weights: each
 * neuron's row is binarized by sign, the row's scaling factor
 * alpha = mean(|w|) is folded into the firing threshold together
 * with the bias ("we normalize the weights to scaling parameters and
 * process them during thresholding"), and the neuron becomes
 * *stateless* — the membrane is reset to zero at the end of every
 * time step, eliminating the potential-residual storage that
 * superconducting circuits cannot afford.
 *
 * A binary neuron therefore fires at step t iff
 *     sum_i B_i * x_i[t]  >=  ceil((theta - bias) / alpha)
 * with B integer in {-1, +1} and x binary — exactly the quantity the
 * NPE ripple counter accumulates in pulses.
 */

#ifndef SUSHI_SNN_BINARIZE_HH
#define SUSHI_SNN_BINARIZE_HH

#include <cstdint>
#include <vector>

#include "snn/network.hh"
#include "snn/packed.hh"

namespace sushi::snn {

/** One binarized fully-connected layer. */
struct BinaryLayer
{
    /** weights[o][i] in {-1, +1}. */
    std::vector<std::vector<std::int8_t>> weights;
    /** Integer firing threshold per output neuron (may be <= 0:
     *  such a neuron fires every step, or > in_dim: never fires). */
    std::vector<int> thresholds;

    std::size_t outDim() const { return weights.size(); }
    std::size_t inDim() const
    {
        return weights.empty() ? 0 : weights[0].size();
    }

    /** Total positive / negative synapse counts (for bucketing). */
    long positiveSynapses() const;
    long negativeSynapses() const;
};

/** The binarized stateless SSNN. */
class BinarySnn
{
  public:
    /** Binarize a trained float network. */
    static BinarySnn fromFloat(const SnnMlp &net);

    /** Assemble directly from layers (tests, hand-built networks). */
    static BinarySnn fromLayers(std::vector<BinaryLayer> layers,
                                int t_steps);

    const std::vector<BinaryLayer> &layers() const { return layers_; }
    int tSteps() const { return t_steps_; }

    /**
     * True when every layer packed into XNOR/popcount form (all
     * weights exactly -1/+1) so stepForward can take the bit-packed
     * fast path. Hand-built layers with zero or junk weights keep
     * the scalar path — packing never changes results.
     */
    bool packedReady() const { return packed_ready_; }

    /** Per-layer packed kernels (valid iff packedReady()). */
    const std::vector<packed::PackedLayer> &packedLayers() const
    {
        return packed_;
    }

    /**
     * Stateless forward over one binary input frame: returns the
     * spike vector of the final layer for this time step.
     */
    std::vector<std::uint8_t>
    stepForward(const std::vector<std::uint8_t> &frame) const;

    /**
     * Full rate-coded inference: runs every time step statelessly
     * and returns summed output spike counts.
     */
    std::vector<int>
    forwardCounts(const std::vector<std::vector<std::uint8_t>> &frames)
        const;

    /** Argmax prediction from forwardCounts. */
    int predict(const std::vector<std::vector<std::uint8_t>> &frames)
        const;

    /**
     * Integer membrane at a single layer for one frame (the exact
     * value the NPE counter reaches); used by tests and the compiler
     * to bound state ranges.
     */
    static int membrane(const BinaryLayer &layer, std::size_t neuron,
                        const std::vector<std::uint8_t> &frame);

  private:
    void buildPacked();

    std::vector<BinaryLayer> layers_;
    std::vector<packed::PackedLayer> packed_;
    bool packed_ready_ = false;
    int t_steps_ = 0;
};

/** Binarize one float layer (sign weights, folded thresholds). */
BinaryLayer binarizeLayer(const Tensor &w, const std::vector<float> &b,
                          float threshold);

/**
 * XNOR-Net effective weights: each row becomes
 * alpha * sign(w) with alpha = mean(|row|). These are the (floating
 * point) weights the binarization-aware trainer runs forward with,
 * and the weights the SpikingJelly-reference column of Table 3 uses.
 */
Tensor binaryEffectiveWeights(const Tensor &w);

/**
 * A copy of @p net whose weights are replaced by their XNOR-Net
 * effective values — the float *reference* model of Table 3
 * (stateful IF, float arithmetic).
 */
SnnMlp toEffectiveBinary(const SnnMlp &net);

} // namespace sushi::snn

#endif // SUSHI_SNN_BINARIZE_HH
