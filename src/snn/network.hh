/**
 * @file
 * The floating-point reference SNN (the SpikingJelly stand-in).
 *
 * Architecture of paper Sec. 6: INPUT 28*28 - Flatten - FC(H) - IF -
 * FC(10) - IF, integrate-and-fire neurons with threshold 1.0, hard
 * reset to 0 (paper Eqs. (1)-(3)), simulated for T time steps with
 * rate-coded outputs. Table 3's "SpikingJelly" column is produced by
 * this model; the "SUSHI" column by its binarized, stateless,
 * bit-sliced derivative running on the chip model.
 */

#ifndef SUSHI_SNN_NETWORK_HH
#define SUSHI_SNN_NETWORK_HH

#include <cstdint>
#include <vector>

#include "snn/tensor.hh"

namespace sushi::snn {

/** Network geometry and neuron parameters. */
struct SnnConfig
{
    std::size_t input = 28 * 28;
    std::size_t hidden = 800;
    std::size_t output = 10;
    int t_steps = 5;
    float threshold = 1.0f;
    /** Arctan surrogate sharpness (SpikingJelly default 2.0). */
    float surrogate_alpha = 2.0f;
    /**
     * Stateless neurons (paper Sec. 5.1): the membrane potential is
     * reset to zero at the end of every time step, so no residual is
     * carried — the superconducting-circuit-friendly model. When
     * false, the standard stateful IF of Eqs. (1)-(3) is used (the
     * SpikingJelly reference behaviour).
     */
    bool stateless = false;
};

/** Per-step activations recorded for BPTT. */
struct ForwardTrace
{
    std::vector<Tensor> x;      ///< input frames [T][B x in]
    std::vector<Tensor> v1_pre; ///< hidden membrane before firing
    std::vector<Tensor> s1;     ///< hidden spikes
    std::vector<Tensor> v2_pre; ///< output membrane before firing
    std::vector<Tensor> s2;     ///< output spikes
    Tensor counts;              ///< summed output spikes [B x out]
};

/** Two-layer fully-connected IF spiking network. */
class SnnMlp
{
  public:
    SnnMlp(const SnnConfig &cfg, std::uint64_t seed);

    const SnnConfig &config() const { return cfg_; }

    /// @name Parameters (exposed for the trainer and binarizer).
    /// @{
    Tensor w1;               ///< [hidden x input]
    std::vector<float> b1;   ///< [hidden]
    Tensor w2;               ///< [output x hidden]
    std::vector<float> b2;   ///< [output]
    /// @}

    /**
     * Run the network over pre-encoded spike frames.
     * @param frames frames[t] is a [B x input] 0/1 matrix
     * @param trace  if non-null, filled with per-step activations
     * @return output spike counts [B x output]
     */
    Tensor forward(const std::vector<Tensor> &frames,
                   ForwardTrace *trace = nullptr) const;

    /**
     * Forward pass with explicit weight tensors (used by the
     * binarization-aware trainer, which substitutes the XNOR-Net
     * effective weights alpha * sign(w) while keeping the float
     * shadow weights in w1/w2).
     */
    Tensor forwardWith(const Tensor &eff_w1, const Tensor &eff_w2,
                       const std::vector<Tensor> &frames,
                       ForwardTrace *trace = nullptr) const;

    /** Argmax-of-counts prediction per batch row. */
    std::vector<int> predict(const std::vector<Tensor> &frames) const;

  private:
    SnnConfig cfg_;
};

/** Arctan surrogate-gradient derivative at @p v (centred at 0). */
float surrogateGrad(float v, float alpha);

} // namespace sushi::snn

#endif // SUSHI_SNN_NETWORK_HH
