#include "snn/binarize.hh"

#include <cmath>

#include "common/logging.hh"

namespace sushi::snn {

long
BinaryLayer::positiveSynapses() const
{
    long n = 0;
    for (const auto &row : weights)
        for (std::int8_t w : row)
            n += w > 0 ? 1 : 0;
    return n;
}

long
BinaryLayer::negativeSynapses() const
{
    long n = 0;
    for (const auto &row : weights)
        for (std::int8_t w : row)
            n += w < 0 ? 1 : 0;
    return n;
}

BinaryLayer
binarizeLayer(const Tensor &w, const std::vector<float> &b,
              float threshold)
{
    sushi_assert(b.size() == w.rows());
    BinaryLayer layer;
    layer.weights.resize(w.rows());
    layer.thresholds.resize(w.rows());
    for (std::size_t o = 0; o < w.rows(); ++o) {
        const float *row = w.row(o);
        double alpha = 0.0;
        for (std::size_t i = 0; i < w.cols(); ++i)
            alpha += std::fabs(row[i]);
        alpha /= static_cast<double>(w.cols());
        if (alpha <= 0.0)
            alpha = 1.0; // degenerate all-zero row

        auto &bw = layer.weights[o];
        bw.resize(w.cols());
        for (std::size_t i = 0; i < w.cols(); ++i)
            bw[i] = row[i] >= 0.0f ? 1 : -1;

        // Fire iff alpha * (B . x) + bias >= threshold.
        layer.thresholds[o] = static_cast<int>(std::ceil(
            (static_cast<double>(threshold) - b[o]) / alpha));
    }
    return layer;
}

Tensor
binaryEffectiveWeights(const Tensor &w)
{
    Tensor eff(w.rows(), w.cols());
    for (std::size_t o = 0; o < w.rows(); ++o) {
        const float *row = w.row(o);
        double alpha = 0.0;
        for (std::size_t i = 0; i < w.cols(); ++i)
            alpha += std::fabs(row[i]);
        alpha /= static_cast<double>(w.cols());
        if (alpha <= 0.0)
            alpha = 1.0;
        float *erow = eff.row(o);
        for (std::size_t i = 0; i < w.cols(); ++i)
            erow[i] = row[i] >= 0.0f
                          ? static_cast<float>(alpha)
                          : -static_cast<float>(alpha);
    }
    return eff;
}

SnnMlp
toEffectiveBinary(const SnnMlp &net)
{
    SnnMlp out = net;
    out.w1 = binaryEffectiveWeights(net.w1);
    out.w2 = binaryEffectiveWeights(net.w2);
    return out;
}

BinarySnn
BinarySnn::fromFloat(const SnnMlp &net)
{
    BinarySnn out;
    out.t_steps_ = net.config().t_steps;
    out.layers_.push_back(
        binarizeLayer(net.w1, net.b1, net.config().threshold));
    out.layers_.push_back(
        binarizeLayer(net.w2, net.b2, net.config().threshold));
    return out;
}

BinarySnn
BinarySnn::fromLayers(std::vector<BinaryLayer> layers, int t_steps)
{
    sushi_assert(!layers.empty());
    sushi_assert(t_steps >= 1);
    BinarySnn out;
    out.layers_ = std::move(layers);
    out.t_steps_ = t_steps;
    return out;
}

int
BinarySnn::membrane(const BinaryLayer &layer, std::size_t neuron,
                    const std::vector<std::uint8_t> &frame)
{
    sushi_assert(neuron < layer.outDim());
    sushi_assert(frame.size() == layer.inDim());
    const auto &row = layer.weights[neuron];
    int m = 0;
    for (std::size_t i = 0; i < frame.size(); ++i)
        if (frame[i])
            m += row[i];
    return m;
}

std::vector<std::uint8_t>
BinarySnn::stepForward(const std::vector<std::uint8_t> &frame) const
{
    std::vector<std::uint8_t> act = frame;
    for (const BinaryLayer &layer : layers_) {
        sushi_assert(act.size() == layer.inDim());
        std::vector<std::uint8_t> next(layer.outDim(), 0);
        for (std::size_t o = 0; o < layer.outDim(); ++o) {
            // Stateless neuron: membrane starts from zero each step.
            const int m = membrane(layer, o, act);
            next[o] = m >= layer.thresholds[o] ? 1 : 0;
        }
        act = std::move(next);
    }
    return act;
}

std::vector<int>
BinarySnn::forwardCounts(
    const std::vector<std::vector<std::uint8_t>> &frames) const
{
    sushi_assert(!layers_.empty());
    std::vector<int> counts(layers_.back().outDim(), 0);
    for (const auto &frame : frames) {
        const auto spikes = stepForward(frame);
        for (std::size_t o = 0; o < spikes.size(); ++o)
            counts[o] += spikes[o];
    }
    return counts;
}

int
BinarySnn::predict(
    const std::vector<std::vector<std::uint8_t>> &frames) const
{
    const auto counts = forwardCounts(frames);
    int best = 0;
    for (std::size_t c = 1; c < counts.size(); ++c)
        if (counts[c] > counts[static_cast<std::size_t>(best)])
            best = static_cast<int>(c);
    return best;
}

} // namespace sushi::snn
