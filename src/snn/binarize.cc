#include "snn/binarize.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sushi::snn {

namespace {

/**
 * The single binarization sign predicate: w >= 0 maps to +1 (so
 * -0.0f and +0.0f agree), NaN maps to -1 (the comparison is false).
 * binarizeLayer, binaryEffectiveWeights, and the packed kernels must
 * round identically or the differential fuzzer's packed-vs-scalar
 * parity breaks on sign-of-zero inputs.
 */
inline bool
binaryPositive(float w)
{
    return w >= 0.0f;
}

/** Row scaling factor alpha = mean(|w|), guarded so a degenerate row
 *  (all zeros, or any NaN poisoning the mean) falls back to 1.0
 *  instead of producing a NaN threshold. `!(alpha > 0)` is the NaN-
 *  proof spelling of `alpha <= 0`. */
double
rowAlpha(const float *row, std::size_t n)
{
    double alpha = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        alpha += std::fabs(row[i]);
    alpha /= static_cast<double>(n);
    if (!(alpha > 0.0))
        alpha = 1.0;
    return alpha;
}

/**
 * Integer firing threshold with deterministic rounding. The raw
 * ceil((theta - bias) / alpha) can be astronomically large (tiny
 * alpha, runaway trained bias) and casting that double to int is
 * undefined behaviour. Membranes live in [-in_dim, +in_dim], so any
 * threshold at or below -(in_dim + 1) fires every step and any at or
 * above in_dim + 1 never fires: clamping to that closed range
 * preserves behaviour bit-for-bit while keeping the cast defined.
 * NaN input (guarded alpha makes it unreachable from here, but the
 * clamp must still be total) resolves to the lower bound.
 */
int
clampedThreshold(double raw, std::size_t in_dim)
{
    const double hi = static_cast<double>(in_dim) + 1.0;
    const double lo = -hi;
    // max(lo, NaN) yields lo, so NaN deterministically "always
    // fires" rather than tripping float-cast-overflow UB.
    return static_cast<int>(std::min(hi, std::max(lo, raw)));
}

} // namespace

long
BinaryLayer::positiveSynapses() const
{
    long n = 0;
    for (const auto &row : weights)
        for (std::int8_t w : row)
            n += w > 0 ? 1 : 0;
    return n;
}

long
BinaryLayer::negativeSynapses() const
{
    long n = 0;
    for (const auto &row : weights)
        for (std::int8_t w : row)
            n += w < 0 ? 1 : 0;
    return n;
}

BinaryLayer
binarizeLayer(const Tensor &w, const std::vector<float> &b,
              float threshold)
{
    sushi_assert(b.size() == w.rows());
    BinaryLayer layer;
    layer.weights.resize(w.rows());
    layer.thresholds.resize(w.rows());
    for (std::size_t o = 0; o < w.rows(); ++o) {
        const float *row = w.row(o);
        const double alpha = rowAlpha(row, w.cols());

        auto &bw = layer.weights[o];
        bw.resize(w.cols());
        for (std::size_t i = 0; i < w.cols(); ++i)
            bw[i] = binaryPositive(row[i]) ? 1 : -1;

        // Fire iff alpha * (B . x) + bias >= threshold.
        layer.thresholds[o] = clampedThreshold(
            std::ceil((static_cast<double>(threshold) - b[o]) /
                      alpha),
            w.cols());
    }
    return layer;
}

Tensor
binaryEffectiveWeights(const Tensor &w)
{
    Tensor eff(w.rows(), w.cols());
    for (std::size_t o = 0; o < w.rows(); ++o) {
        const float *row = w.row(o);
        const double alpha = rowAlpha(row, w.cols());
        float *erow = eff.row(o);
        for (std::size_t i = 0; i < w.cols(); ++i)
            erow[i] = binaryPositive(row[i])
                          ? static_cast<float>(alpha)
                          : -static_cast<float>(alpha);
    }
    return eff;
}

SnnMlp
toEffectiveBinary(const SnnMlp &net)
{
    SnnMlp out = net;
    out.w1 = binaryEffectiveWeights(net.w1);
    out.w2 = binaryEffectiveWeights(net.w2);
    return out;
}

BinarySnn
BinarySnn::fromFloat(const SnnMlp &net)
{
    BinarySnn out;
    out.t_steps_ = net.config().t_steps;
    out.layers_.push_back(
        binarizeLayer(net.w1, net.b1, net.config().threshold));
    out.layers_.push_back(
        binarizeLayer(net.w2, net.b2, net.config().threshold));
    out.buildPacked();
    return out;
}

BinarySnn
BinarySnn::fromLayers(std::vector<BinaryLayer> layers, int t_steps)
{
    sushi_assert(!layers.empty());
    sushi_assert(t_steps >= 1);
    BinarySnn out;
    out.layers_ = std::move(layers);
    out.t_steps_ = t_steps;
    out.buildPacked();
    return out;
}

void
BinarySnn::buildPacked()
{
    packed_.clear();
    packed_.reserve(layers_.size());
    bool ok = !layers_.empty();
    for (const BinaryLayer &layer : layers_) {
        packed_.push_back(packed::PackedLayer::fromSigned(
            layer.weights, layer.thresholds));
        ok = ok && packed_.back().packable();
    }
    packed_ready_ = ok;
}

int
BinarySnn::membrane(const BinaryLayer &layer, std::size_t neuron,
                    const std::vector<std::uint8_t> &frame)
{
    sushi_assert(neuron < layer.outDim());
    sushi_assert(frame.size() == layer.inDim());
    const auto &row = layer.weights[neuron];
    int m = 0;
    for (std::size_t i = 0; i < frame.size(); ++i)
        if (frame[i])
            m += row[i];
    return m;
}

std::vector<std::uint8_t>
BinarySnn::stepForward(const std::vector<std::uint8_t> &frame) const
{
    if (packed_ready_ && packed::enabled()) {
        // XNOR/popcount fast path; the scalar loop below is the
        // oracle the differential fuzzer checks this against.
        std::vector<std::uint8_t> act = frame;
        packed::PackedActivations x;
        for (const packed::PackedLayer &layer : packed_) {
            sushi_assert(act.size() == layer.inDim());
            packed::packRow(act, x);
            std::vector<std::uint8_t> next(layer.outDim(), 0);
            packed::spikeForward(layer, x, next.data(),
                                 packed::Backend::Packed,
                                 /*threads=*/1);
            act = std::move(next);
        }
        return act;
    }
    std::vector<std::uint8_t> act = frame;
    for (const BinaryLayer &layer : layers_) {
        sushi_assert(act.size() == layer.inDim());
        std::vector<std::uint8_t> next(layer.outDim(), 0);
        for (std::size_t o = 0; o < layer.outDim(); ++o) {
            // Stateless neuron: membrane starts from zero each step.
            const int m = membrane(layer, o, act);
            next[o] = m >= layer.thresholds[o] ? 1 : 0;
        }
        act = std::move(next);
    }
    return act;
}

std::vector<int>
BinarySnn::forwardCounts(
    const std::vector<std::vector<std::uint8_t>> &frames) const
{
    sushi_assert(!layers_.empty());
    std::vector<int> counts(layers_.back().outDim(), 0);
    for (const auto &frame : frames) {
        const auto spikes = stepForward(frame);
        for (std::size_t o = 0; o < spikes.size(); ++o)
            counts[o] += spikes[o];
    }
    return counts;
}

int
BinarySnn::predict(
    const std::vector<std::vector<std::uint8_t>> &frames) const
{
    const auto counts = forwardCounts(frames);
    int best = 0;
    for (std::size_t c = 1; c < counts.size(); ++c)
        if (counts[c] > counts[static_cast<std::size_t>(best)])
            best = static_cast<int>(c);
    return best;
}

} // namespace sushi::snn
