#include "snn/tensor.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace sushi::snn {

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

void
Tensor::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

void
Tensor::heInit(Rng &rng, std::size_t fan_in)
{
    const double std = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (auto &v : data_)
        v = static_cast<float>(rng.gaussian(0.0, std));
}

void
Tensor::axpy(float alpha, const Tensor &other)
{
    sushi_assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += alpha * other.data_[i];
}

double
Tensor::normSq() const
{
    double s = 0.0;
    for (float v : data_)
        s += static_cast<double>(v) * v;
    return s;
}

void
linearForward(const Tensor &x, const Tensor &w,
              const std::vector<float> &bias, Tensor &out)
{
    const std::size_t batch = x.rows();
    const std::size_t in_dim = x.cols();
    const std::size_t out_dim = w.rows();
    sushi_assert(w.cols() == in_dim);
    sushi_assert(bias.size() == out_dim);
    sushi_assert(out.rows() == batch && out.cols() == out_dim);

    if (batch >= 256) {
        // Large batches: parallelise over rows.
        parallelFor(batch, [&](std::size_t b0, std::size_t b1) {
            for (std::size_t b = b0; b < b1; ++b) {
                const float *xb = x.row(b);
                float *ob = out.row(b);
                for (std::size_t o = 0; o < out_dim; ++o) {
                    const float *wo = w.row(o);
                    float acc = bias[o];
                    for (std::size_t i = 0; i < in_dim; ++i)
                        acc += wo[i] * xb[i];
                    ob[o] = acc;
                }
            }
        });
        return;
    }
    // Training-size batches: parallelise over output neurons, which
    // is the wide dimension (e.g. 800 hidden units at batch 64).
    parallelFor(out_dim, [&](std::size_t o0, std::size_t o1) {
        for (std::size_t o = o0; o < o1; ++o) {
            const float *wo = w.row(o);
            for (std::size_t b = 0; b < batch; ++b) {
                const float *xb = x.row(b);
                float acc = bias[o];
                for (std::size_t i = 0; i < in_dim; ++i)
                    acc += wo[i] * xb[i];
                out.at(b, o) = acc;
            }
        }
    });
}

void
linearBackward(const Tensor &x, const Tensor &w, const Tensor &dout,
               Tensor &dw, std::vector<float> &db, Tensor &dx)
{
    const std::size_t batch = x.rows();
    const std::size_t in_dim = x.cols();
    const std::size_t out_dim = w.rows();
    sushi_assert(dout.rows() == batch && dout.cols() == out_dim);
    sushi_assert(dw.rows() == out_dim && dw.cols() == in_dim);
    sushi_assert(db.size() == out_dim);
    sushi_assert(dx.rows() == batch && dx.cols() == in_dim);

    // dx = dout * W : parallel over batch.
    parallelFor(batch, [&](std::size_t b0, std::size_t b1) {
        for (std::size_t b = b0; b < b1; ++b) {
            const float *dob = dout.row(b);
            float *dxb = dx.row(b);
            std::fill(dxb, dxb + in_dim, 0.0f);
            for (std::size_t o = 0; o < out_dim; ++o) {
                const float g = dob[o];
                if (g == 0.0f)
                    continue;
                const float *wo = w.row(o);
                for (std::size_t i = 0; i < in_dim; ++i)
                    dxb[i] += g * wo[i];
            }
        }
    });

    // dW += dout^T * x and db += colsum(dout): parallel over outputs
    // so accumulation rows are disjoint.
    parallelFor(out_dim, [&](std::size_t o0, std::size_t o1) {
        for (std::size_t o = o0; o < o1; ++o) {
            float *dwo = dw.row(o);
            float dbo = 0.0f;
            for (std::size_t b = 0; b < batch; ++b) {
                const float g = dout.at(b, o);
                if (g == 0.0f)
                    continue;
                dbo += g;
                const float *xb = x.row(b);
                for (std::size_t i = 0; i < in_dim; ++i)
                    dwo[i] += g * xb[i];
            }
            db[o] += dbo;
        }
    });
}

} // namespace sushi::snn
