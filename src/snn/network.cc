#include "snn/network.hh"

#include <cmath>

#include "common/logging.hh"
#include "snn/packed.hh"

namespace sushi::snn {

SnnMlp::SnnMlp(const SnnConfig &cfg, std::uint64_t seed) : cfg_(cfg)
{
    Rng rng(seed);
    w1 = Tensor(cfg.hidden, cfg.input);
    w1.heInit(rng, cfg.input);
    b1.assign(cfg.hidden, 0.0f);
    w2 = Tensor(cfg.output, cfg.hidden);
    w2.heInit(rng, cfg.hidden);
    b2.assign(cfg.output, 0.0f);
}

namespace {

/**
 * One IF step over a whole batch layer: v_pre = v + h, fire, hard
 * reset. Writes the pre-fire membrane and spikes; updates v in
 * place (paper Eqs. (1)-(3)).
 */
void
ifStep(Tensor &v, const Tensor &h, float theta, Tensor &v_pre,
       Tensor &s)
{
    for (std::size_t i = 0; i < v.size(); ++i) {
        const float pre = v.data()[i] + h.data()[i];
        const float spike = pre >= theta ? 1.0f : 0.0f;
        v_pre.data()[i] = pre;
        s.data()[i] = spike;
        v.data()[i] = pre * (1.0f - spike);
    }
}

} // namespace

Tensor
SnnMlp::forward(const std::vector<Tensor> &frames,
                ForwardTrace *trace) const
{
    return forwardWith(w1, w2, frames, trace);
}

Tensor
SnnMlp::forwardWith(const Tensor &eff_w1, const Tensor &eff_w2,
                    const std::vector<Tensor> &frames,
                    ForwardTrace *trace) const
{
    sushi_assert(static_cast<int>(frames.size()) == cfg_.t_steps);
    const std::size_t batch = frames[0].rows();
    const float theta = cfg_.threshold;

    Tensor v1(batch, cfg_.hidden), v2(batch, cfg_.output);
    Tensor h1(batch, cfg_.hidden), h2(batch, cfg_.output);
    Tensor counts(batch, cfg_.output);

    if (trace) {
        trace->x = frames;
        trace->v1_pre.clear();
        trace->s1.clear();
        trace->v2_pre.clear();
        trace->s2.clear();
    }

    Tensor v1_pre(batch, cfg_.hidden), s1(batch, cfg_.hidden);
    Tensor v2_pre(batch, cfg_.output), s2(batch, cfg_.output);

    // XNOR/popcount fast path: when both weight tensors carry the
    // exact XNOR-Net structure (rows of +-alpha, as produced by
    // binaryEffectiveWeights) and every frame is a 0/1 spike matrix,
    // the charge step runs as bias + alpha * (integer bit dot). Both
    // toggle states route through the same integer kernel (packed vs
    // element-wise scalar backend), so flipping SUSHI_PACKED never
    // changes a single bit of the trainer's numerics. Raw float
    // weights (SnnMlp::forward) fail the structure check and keep
    // the dense linearForward path untouched.
    const packed::PackedLayer p1 =
        packed::PackedLayer::fromEffective(eff_w1, b1);
    const packed::PackedLayer p2 =
        packed::PackedLayer::fromEffective(eff_w2, b2);
    bool use_packed = p1.packable() && p2.packable();
    std::vector<packed::PackedActivations> px;
    if (use_packed) {
        px.resize(frames.size());
        for (std::size_t t = 0; t < frames.size() && use_packed; ++t)
            use_packed = packed::packFloatRows(frames[t], px[t]);
    }
    const packed::Backend backend = packed::activeBackend();
    packed::PackedActivations ps1;

    for (int t = 0; t < cfg_.t_steps; ++t) {
        const Tensor &x = frames[static_cast<std::size_t>(t)];
        sushi_assert(x.cols() == cfg_.input);

        if (cfg_.stateless) {
            // Stateless neuron (Sec. 5.1): zero membrane each step.
            v1.zero();
            v2.zero();
        }

        // Hidden layer: charge (Eq. 1), fire (Eq. 2), reset (Eq. 3).
        if (use_packed)
            packed::effectiveForward(
                p1, px[static_cast<std::size_t>(t)], h1, backend);
        else
            linearForward(x, eff_w1, b1, h1);
        ifStep(v1, h1, theta, v1_pre, s1);

        // Output layer driven by the hidden spikes.
        if (use_packed) {
            const bool ok = packed::packFloatRows(s1, ps1);
            sushi_assert(ok); // ifStep emits exact 0/1 spikes
            packed::effectiveForward(p2, ps1, h2, backend);
        } else {
            linearForward(s1, eff_w2, b2, h2);
        }
        ifStep(v2, h2, theta, v2_pre, s2);

        for (std::size_t i = 0; i < counts.size(); ++i)
            counts.data()[i] += s2.data()[i];

        if (trace) {
            trace->v1_pre.push_back(v1_pre);
            trace->s1.push_back(s1);
            trace->v2_pre.push_back(v2_pre);
            trace->s2.push_back(s2);
        }
    }
    if (trace)
        trace->counts = counts;
    return counts;
}

std::vector<int>
SnnMlp::predict(const std::vector<Tensor> &frames) const
{
    const Tensor counts = forward(frames);
    std::vector<int> labels(counts.rows());
    for (std::size_t b = 0; b < counts.rows(); ++b) {
        const float *row = counts.row(b);
        int best = 0;
        for (std::size_t c = 1; c < counts.cols(); ++c)
            if (row[c] > row[best])
                best = static_cast<int>(c);
        labels[b] = best;
    }
    return labels;
}

float
surrogateGrad(float v, float alpha)
{
    const float half_pi_alpha = 1.5707963f * alpha;
    const float z = half_pi_alpha * v;
    return alpha / (2.0f * (1.0f + z * z));
}

} // namespace sushi::snn
