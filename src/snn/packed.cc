#include "snn/packed.hh"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace sushi::snn::packed {

namespace {

/** -1 = unresolved (read SUSHI_PACKED once), else 0/1. */
std::atomic<int> g_enabled{-1};

int
resolveEnabled()
{
    int v = g_enabled.load(std::memory_order_relaxed);
    if (v >= 0)
        return v;
    const char *e = std::getenv("SUSHI_PACKED");
    v = (e != nullptr && e[0] == '0' && e[1] == '\0') ? 0 : 1;
    // Another thread may race the first read; both compute the same
    // value from the same environment, so either store wins safely.
    g_enabled.store(v, std::memory_order_relaxed);
    return v;
}

} // namespace

bool
enabled()
{
    return resolveEnabled() == 1;
}

void
setEnabled(bool on)
{
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
packRows(const std::uint8_t *const *rows, std::size_t batch,
         std::size_t bits, PackedActivations &out)
{
    out.batch = batch;
    out.bits = bits;
    out.words = laneWords(bits);
    out.lanes.assign(batch * out.words, 0);
    out.active.assign(batch, 0);
    for (std::size_t b = 0; b < batch; ++b) {
        const std::uint8_t *src = rows[b];
        std::uint64_t *dst = out.lanes.data() + b * out.words;
        std::int32_t count = 0;
        for (std::size_t i = 0; i < bits; ++i) {
            if (src[i] != 0) {
                dst[i / 64] |= std::uint64_t{1} << (i % 64);
                ++count;
            }
        }
        out.active[b] = count;
    }
}

void
packRow(const std::vector<std::uint8_t> &frame, PackedActivations &out)
{
    const std::uint8_t *row = frame.data();
    packRows(&row, 1, frame.size(), out);
}

bool
packFloatRows(const Tensor &x, PackedActivations &out)
{
    const std::size_t batch = x.rows();
    const std::size_t bits = x.cols();
    out.batch = batch;
    out.bits = bits;
    out.words = laneWords(bits);
    out.lanes.assign(batch * out.words, 0);
    out.active.assign(batch, 0);
    for (std::size_t b = 0; b < batch; ++b) {
        const float *src = x.row(b);
        std::uint64_t *dst = out.lanes.data() + b * out.words;
        std::int32_t count = 0;
        for (std::size_t i = 0; i < bits; ++i) {
            if (src[i] == 1.0f) {
                dst[i / 64] |= std::uint64_t{1} << (i % 64);
                ++count;
            } else if (src[i] != 0.0f) {
                return false; // not a spike frame
            }
        }
        out.active[b] = count;
    }
    return true;
}

PackedLayer
PackedLayer::fromSigned(
    const std::vector<std::vector<std::int8_t>> &weights,
    const std::vector<int> &thresholds)
{
    PackedLayer layer;
    layer.out_dim_ = weights.size();
    layer.in_dim_ = weights.empty() ? 0 : weights[0].size();
    layer.words_ = laneWords(layer.in_dim_);
    layer.signs_.assign(layer.out_dim_ * layer.words_, 0);
    layer.thresholds_ = thresholds;
    sushi_assert(thresholds.size() == weights.size());
    for (std::size_t o = 0; o < layer.out_dim_; ++o) {
        const auto &row = weights[o];
        if (row.size() != layer.in_dim_)
            return layer; // ragged: not packable
        std::uint64_t *dst = layer.signs_.data() + o * layer.words_;
        for (std::size_t i = 0; i < layer.in_dim_; ++i) {
            if (row[i] == 1)
                dst[i / 64] |= std::uint64_t{1} << (i % 64);
            else if (row[i] != -1)
                return layer; // zero or junk weight: not packable
        }
    }
    layer.packable_ = true;
    return layer;
}

PackedLayer
PackedLayer::fromEffective(const Tensor &w,
                           const std::vector<float> &bias)
{
    PackedLayer layer;
    layer.out_dim_ = w.rows();
    layer.in_dim_ = w.cols();
    layer.words_ = laneWords(layer.in_dim_);
    layer.signs_.assign(layer.out_dim_ * layer.words_, 0);
    layer.alpha_.resize(layer.out_dim_);
    layer.bias_ = bias;
    if (bias.size() != layer.out_dim_ || layer.in_dim_ == 0)
        return layer;
    for (std::size_t o = 0; o < layer.out_dim_; ++o) {
        const float *row = w.row(o);
        const float alpha = std::fabs(row[0]);
        // `> 0` also rejects NaN rows (every comparison is false).
        if (!(alpha > 0.0f))
            return layer;
        std::uint64_t *dst = layer.signs_.data() + o * layer.words_;
        for (std::size_t i = 0; i < layer.in_dim_; ++i) {
            if (row[i] == alpha)
                dst[i / 64] |= std::uint64_t{1} << (i % 64);
            else if (row[i] != -alpha)
                return layer; // row is not uniform +-alpha
        }
        layer.alpha_[o] = alpha;
    }
    layer.packable_ = true;
    return layer;
}

int
PackedLayer::dot(std::size_t o, const std::uint64_t *x,
                 std::int32_t active) const
{
    const std::uint64_t *s = signRow(o);
    int pos = 0;
    for (std::size_t w = 0; w < words_; ++w)
        pos += std::popcount(x[w] & s[w]);
    return 2 * pos - active;
}

namespace {

/** Integer dot of neuron @p o the slow way: one sign bit at a time,
 *  accumulating +-1 per active input — the element-by-element oracle
 *  the packed backend must match bit for bit. */
int
scalarDot(const PackedLayer &layer, std::size_t o,
          const std::uint64_t *x, std::size_t bits)
{
    const std::uint64_t *s = layer.signRow(o);
    int acc = 0;
    for (std::size_t i = 0; i < bits; ++i) {
        if (x[i / 64] >> (i % 64) & 1)
            acc += (s[i / 64] >> (i % 64) & 1) ? 1 : -1;
    }
    return acc;
}

/** Shared batch-major driver: fn(o, b, dot) for every (neuron,
 *  sample) pair, neurons split across the pool. */
template <typename Fn>
void
forEachDot(const PackedLayer &layer, const PackedActivations &x,
           Backend backend, int threads, Fn &&fn)
{
    sushi_assert(layer.packable());
    sushi_assert(x.bits == layer.inDim());
    const std::size_t batch = x.batch;
    ParallelOptions opts;
    opts.grain = 16;
    opts.max_workers =
        threads <= 0 ? 0 : static_cast<unsigned>(threads);
    parallelFor(
        layer.outDim(),
        [&](std::size_t o0, std::size_t o1) {
            for (std::size_t o = o0; o < o1; ++o) {
                for (std::size_t b = 0; b < batch; ++b) {
                    const std::uint64_t *xb = x.row(b);
                    const int d =
                        backend == Backend::Packed
                            ? layer.dot(o, xb, x.active[b])
                            : scalarDot(layer, o, xb, x.bits);
                    fn(o, b, d);
                }
            }
        },
        opts);
}

} // namespace

void
spikeForward(const PackedLayer &layer, const PackedActivations &x,
             std::uint8_t *spikes, Backend backend, int threads)
{
    sushi_assert(!layer.thresholds().empty() ||
                 layer.outDim() == 0);
    const std::size_t out_dim = layer.outDim();
    const auto &thr = layer.thresholds();
    forEachDot(layer, x, backend, threads,
               [&](std::size_t o, std::size_t b, int d) {
                   spikes[b * out_dim + o] = d >= thr[o] ? 1 : 0;
               });
}

void
effectiveForward(const PackedLayer &layer, const PackedActivations &x,
                 Tensor &out, Backend backend, int threads)
{
    sushi_assert(out.rows() == x.batch &&
                 out.cols() == layer.outDim());
    const auto &alpha = layer.alpha();
    const auto &bias = layer.bias();
    sushi_assert(alpha.size() == layer.outDim());
    forEachDot(layer, x, backend, threads,
               [&](std::size_t o, std::size_t b, int d) {
                   // One shared epilogue: both backends produce the
                   // identical float, so packed == scalar bitwise.
                   out.at(b, o) =
                       bias[o] +
                       alpha[o] * static_cast<float>(d);
               });
}

} // namespace sushi::snn::packed
