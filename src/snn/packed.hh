/**
 * @file
 * Bit-packed XNOR/popcount kernels for binarized fully-connected
 * layers (ROADMAP item 1; the `binarized_fc_layer` trick).
 *
 * A {-1, +1} weight row is stored as sign bits in `uint64_t` lanes
 * (bit = 1 <=> weight +1); a binary activation row packs the same
 * way. Because the XNOR-Net product over binary activations is
 *
 *     B . x  =  (+1 matches) - (-1 matches)
 *            =  2 * popcount(x & signs) - popcount(x)
 *
 * one 64-lane AND + popcount replaces 64 scalar multiply-adds. The
 * kernels are batch-major: the outer loop walks output neurons, so
 * each packed weight row is fetched once and streamed across the
 * whole serving batch.
 *
 * Every kernel has two backends computing *bit-identical* results:
 *
 *  - Backend::Scalar — the oracle. Walks the sign bits one element
 *    at a time and accumulates the integer dot product exactly as
 *    the pre-packed element-by-element code did.
 *  - Backend::Packed — the XNOR/popcount fast path.
 *
 * Both backends share one float epilogue (`bias + alpha * dot`) and
 * the dot product is exact integer arithmetic in either, so packed
 * vs. scalar equality is bitwise — the property the differential
 * fuzzer in tests/test_packed_snn.cc hammers. The process-wide
 * toggle below selects the backend for every wired call site
 * (BinarySnn::stepForward, SnnMlp::forwardWith, SushiChip); the env
 * variable SUSHI_PACKED=0 forces the scalar oracle everywhere.
 *
 * Tail handling: for in_dim not a multiple of 64 the final lane's
 * high bits are zero in both the packed weights and every packed
 * activation row, so they never contribute to popcounts. Activation
 * packing is the single place that enforces the invariant.
 */

#ifndef SUSHI_SNN_PACKED_HH
#define SUSHI_SNN_PACKED_HH

#include <cstdint>
#include <vector>

#include "snn/tensor.hh"

namespace sushi::snn::packed {

/** Kernel implementation selector. */
enum class Backend
{
    Scalar, ///< element-by-element integer dot (the oracle)
    Packed, ///< XNOR + popcount over uint64_t lanes
};

/**
 * Process-wide packed-kernel toggle. Defaults to on; the environment
 * variable SUSHI_PACKED=0 (checked once, on first use) or
 * setEnabled(false) forces the scalar oracle. Reads and writes are
 * atomic so tests may flip it around threaded regions.
 */
bool enabled();
void setEnabled(bool on);

/** The backend the toggle currently selects. */
inline Backend
activeBackend()
{
    return enabled() ? Backend::Packed : Backend::Scalar;
}

/** Lanes needed for @p bits packed 64 per word. */
inline std::size_t
laneWords(std::size_t bits)
{
    return (bits + 63) / 64;
}

/**
 * A batch of binary activation rows packed into uint64_t lanes,
 * bit i of row b = (activation i of sample b != 0). Tail bits past
 * `bits` are zero. `active[b]` caches popcount(row b) — the term
 * that turns a popcount into a signed dot product.
 */
struct PackedActivations
{
    std::size_t batch = 0;
    std::size_t bits = 0;
    std::size_t words = 0;
    std::vector<std::uint64_t> lanes; ///< [batch x words]
    std::vector<std::int32_t> active; ///< per-row set-bit count

    const std::uint64_t *row(std::size_t b) const
    {
        return lanes.data() + b * words;
    }
};

/** Pack @p batch rows of @p bits uint8 activations (nonzero = 1). */
void packRows(const std::uint8_t *const *rows, std::size_t batch,
              std::size_t bits, PackedActivations &out);

/** Pack one uint8 frame (batch of one). */
void packRow(const std::vector<std::uint8_t> &frame,
             PackedActivations &out);

/**
 * Pack a [batch x bits] float tensor whose entries are exactly 0.0f
 * or 1.0f (spike frames).
 * @return false (out unspecified) if any entry is neither — the
 *         caller must fall back to the dense float path.
 */
bool packFloatRows(const Tensor &x, PackedActivations &out);

/**
 * One fully-connected layer with {-1, +1} weights packed as sign
 * bits. Carries integer firing thresholds (spikeForward, built from
 * a binarized layer) and/or the XNOR-Net float epilogue alpha/bias
 * (effectiveForward, built from effective weights).
 *
 * Construction is *validating*: inputs without the exact binary
 * structure yield packable() == false and the caller keeps its
 * scalar path. This is what makes the wiring safe to leave on by
 * default — a zero weight, a non-uniform row, or a NaN can never
 * silently change results.
 */
class PackedLayer
{
  public:
    PackedLayer() = default;

    /**
     * Build from signed int8 weights [out][in] and integer firing
     * thresholds. packable() == false if any weight is not -1/+1.
     */
    static PackedLayer
    fromSigned(const std::vector<std::vector<std::int8_t>> &weights,
               const std::vector<int> &thresholds);

    /**
     * Build from XNOR-Net effective float weights: every row must be
     * exactly +-alpha_o with alpha_o > 0 (binaryEffectiveWeights
     * output). packable() == false otherwise.
     */
    static PackedLayer fromEffective(const Tensor &w,
                                     const std::vector<float> &bias);

    bool packable() const { return packable_; }
    std::size_t inDim() const { return in_dim_; }
    std::size_t outDim() const { return out_dim_; }
    std::size_t words() const { return words_; }

    /** Sign lanes of output neuron @p o (bit = 1 <=> weight +1). */
    const std::uint64_t *signRow(std::size_t o) const
    {
        return signs_.data() + o * words_;
    }

    /** Integer firing thresholds (fromSigned only). */
    const std::vector<int> &thresholds() const { return thresholds_; }

    /** Per-row alpha / bias epilogue (fromEffective only). */
    const std::vector<float> &alpha() const { return alpha_; }
    const std::vector<float> &bias() const { return bias_; }

    /** Signed dot product of neuron @p o with a packed row. */
    int dot(std::size_t o, const std::uint64_t *x,
            std::int32_t active) const;

  private:
    std::size_t in_dim_ = 0;
    std::size_t out_dim_ = 0;
    std::size_t words_ = 0;
    bool packable_ = false;
    std::vector<std::uint64_t> signs_; ///< [out x words], tail zero
    std::vector<int> thresholds_;
    std::vector<float> alpha_;
    std::vector<float> bias_;
};

/**
 * Stateless binarized FC forward: spikes[b * outDim + o] =
 * (B_o . x_b >= threshold_o). Layer must come from fromSigned.
 * Batch-major; optionally threaded over output neurons via
 * common/parallel (@p threads <= 0 uses the shared pool width,
 * 1 forces sequential). Results are bit-identical across backends
 * and thread counts.
 */
void spikeForward(const PackedLayer &layer,
                  const PackedActivations &x, std::uint8_t *spikes,
                  Backend backend, int threads = 1);

/**
 * Float binary-dense forward for the binarization-aware trainer:
 * out(b, o) = bias_o + alpha_o * (B_o . x_b). Layer must come from
 * fromEffective; out must be [batch x outDim]. Same determinism
 * contract as spikeForward.
 */
void effectiveForward(const PackedLayer &layer,
                      const PackedActivations &x, Tensor &out,
                      Backend backend, int threads = 0);

} // namespace sushi::snn::packed

#endif // SUSHI_SNN_PACKED_HH
