/**
 * @file
 * A minimal dense 2-D float tensor for the SNN framework.
 *
 * Row-major storage, with the handful of BLAS-like kernels the
 * surrogate-gradient trainer needs. Deliberately small: the SNN
 * stack is a substrate for reproducing SUSHI's Table 3, not a
 * general ML library.
 */

#ifndef SUSHI_SNN_TENSOR_HH
#define SUSHI_SNN_TENSOR_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace sushi::snn {

/** Dense row-major matrix of floats. */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-filled rows x cols matrix. */
    Tensor(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    float at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *row(std::size_t r) { return data_.data() + r * cols_; }
    const float *row(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set every element to zero. */
    void zero();

    /** Fill with He-style Gaussian init, std = sqrt(2 / fan_in). */
    void heInit(Rng &rng, std::size_t fan_in);

    /** this += alpha * other (same shape). */
    void axpy(float alpha, const Tensor &other);

    /** Frobenius-norm squared. */
    double normSq() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * out[b,:] = x[b,:] * W^T + bias, i.e. a linear layer applied to a
 * batch of row vectors; W is [out_dim x in_dim]. Parallel over batch
 * rows.
 */
void linearForward(const Tensor &x, const Tensor &w,
                   const std::vector<float> &bias, Tensor &out);

/**
 * Gradients of a linear layer: given upstream dL/dout [B x out_dim]
 * and inputs x [B x in_dim], accumulate dW += dout^T * x,
 * db += colsum(dout), and produce dx = dout * W.
 */
void linearBackward(const Tensor &x, const Tensor &w,
                    const Tensor &dout, Tensor &dw,
                    std::vector<float> &db, Tensor &dx);

} // namespace sushi::snn

#endif // SUSHI_SNN_TENSOR_HH
