#include "compiler/program.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace sushi::compiler {

const char *
channelName(Channel ch)
{
    switch (ch) {
      case Channel::Input:       return "input";
      case Channel::InRst:       return "in.rst";
      case Channel::InWrite:     return "in.write";
      case Channel::InSet0:      return "in.set0";
      case Channel::InSet1:      return "in.set1";
      case Channel::OutRst:      return "out.rst";
      case Channel::OutWrite:    return "out.write";
      case Channel::OutSet0:     return "out.set0";
      case Channel::OutSet1:     return "out.set1";
      case Channel::SynRst:      return "syn.rst";
      case Channel::SynStrength: return "syn.strength";
    }
    return "?";
}

long
PulseProgram::totalPulses() const
{
    long total = 0;
    for (const auto &op : ops) {
        switch (op.channel) {
          case Channel::SynRst:
            // Clear pulses for the switch and every tap NDRO.
            total += 1 + std::max(0, op.c);
            break;
          case Channel::SynStrength:
            total += std::max(0, op.c); // switch + c-1 taps
            break;
          default:
            total += 1;
        }
    }
    return total;
}

std::vector<PulseOp>
PulseProgram::opsInWindow(Tick from, Tick to) const
{
    std::vector<PulseOp> out;
    for (const auto &op : ops)
        if (op.at >= from && op.at < to)
            out.push_back(op);
    return out;
}

Tick
PulseProgram::endTime() const
{
    return ops.empty() ? 0 : ops.back().at;
}

std::string
PulseProgram::dump() const
{
    std::ostringstream os;
    for (const auto &op : ops) {
        os << ticksToPs(op.at) << "ps " << channelName(op.channel)
           << " a=" << op.a << " b=" << op.b;
        if (op.channel == Channel::SynStrength)
            os << " strength=" << op.c;
        os << "\n";
    }
    return os.str();
}

std::string
PulseProgram::validate() const
{
    // Sorted by time.
    for (std::size_t i = 1; i < ops.size(); ++i) {
        if (ops[i].at < ops[i - 1].at)
            return "ops not sorted at index " + std::to_string(i);
    }

    // Sec. 5.2 ordering per NPE: a write must follow a rst with no
    // intervening input-affecting pulse; an input must follow a set.
    enum class NpeState { Fresh, Reset, Armed };
    std::map<std::pair<bool, int>, NpeState> state; // (is_out, idx)
    auto key = [](bool is_out, int idx) {
        return std::make_pair(is_out, idx);
    };
    for (const auto &op : ops) {
        switch (op.channel) {
          case Channel::InRst:
            state[key(false, op.a)] = NpeState::Reset;
            break;
          case Channel::OutRst:
            state[key(true, op.a)] = NpeState::Reset;
            break;
          case Channel::InWrite:
            if (state[key(false, op.a)] != NpeState::Reset)
                return "write to input NPE " +
                       std::to_string(op.a) + " without rst";
            break;
          case Channel::OutWrite:
            if (state[key(true, op.a)] != NpeState::Reset)
                return "write to output NPE " +
                       std::to_string(op.a) + " without rst";
            break;
          case Channel::InSet0:
          case Channel::InSet1:
            state[key(false, op.a)] = NpeState::Armed;
            break;
          case Channel::OutSet0:
          case Channel::OutSet1:
            state[key(true, op.a)] = NpeState::Armed;
            break;
          case Channel::Input:
            if (state[key(false, op.a)] != NpeState::Armed)
                return "input into NPE " + std::to_string(op.a) +
                       " before set";
            break;
          default:
            break;
        }
    }
    return {};
}

} // namespace sushi::compiler
