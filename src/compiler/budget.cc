#include "compiler/budget.hh"

#include "compiler/cost_model.hh"

namespace sushi::compiler {

const char *
CompileError::kindName(Kind kind)
{
    switch (kind) {
      case Kind::BadChipConfig:
        return "BadChipConfig";
      case Kind::BadBudget:
        return "BadBudget";
      case Kind::BudgetOverflow:
        return "BudgetOverflow";
      case Kind::EmptyNetwork:
        return "EmptyNetwork";
    }
    return "Unknown";
}

double
BudgetReport::jjUtilisation() const
{
    if (budget.jj_cap <= 0)
        return 0.0;
    return static_cast<double>(totalJjs()) /
           static_cast<double>(budget.jj_cap);
}

double
BudgetReport::areaUtilisation() const
{
    if (budget.area_cap_mm2 <= 0.0)
        return 0.0;
    return totalAreaMm2() / budget.area_cap_mm2;
}

ChipBudget
ChipBudget::tableDefaults(int n, int sc_per_npe)
{
    // The fabric side is the design's own Table 2-calibrated cost;
    // the bank allowance scales with the crosspoint count (n^2), so
    // larger meshes are allowed proportionally larger resident
    // models. 2560 synapse bits and 4 preload words per crosspoint
    // put the flagship 784-800-10 model at ~97 % of the n = 16 JJ
    // cap — one chip, little to spare, exactly the Table 2 story.
    const long bank_synapses = 2560L * n * n;
    const long bank_neurons = 4L * n * n;
    ChipBudget b;
    b.sc_per_npe = sc_per_npe;
    const FabricCost fabric = fabricCost(n);
    b.jj_cap = fabric.jjs +
               bank_synapses * synapseBitCost().jjs +
               bank_neurons * sc_per_npe * preloadBitCost().jjs;
    b.area_cap_mm2 =
        fabric.area_mm2 +
        bank_synapses * synapseBitCost().area_mm2 +
        bank_neurons * sc_per_npe * preloadBitCost().area_mm2;
    return b;
}

} // namespace sushi::compiler
