/**
 * @file
 * The pulse-program representation: the off-chip encoding phase's
 * output (paper Fig. 12(c)-(f)).
 *
 * A PulseProgram is the complete, timed list of pulses the pulse
 * input device plays into the chip: weight-configuration streams
 * (strength NDRO rst/din per synapse, Fig. 12(e)), neuron control
 * streams (rst / write / set0 / set1 per NPE, honouring the Sec. 5.2
 * asynchronous ordering), and the encoded input spike streams
 * (Fig. 12(f)). Programs are checked against the Table-1 constraints
 * at build time by the encoder and can be applied to a gate-level
 * mesh or inspected/serialised.
 */

#ifndef SUSHI_COMPILER_PROGRAM_HH
#define SUSHI_COMPILER_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hh"

namespace sushi::compiler {

/** Which chip channel a pulse is driven into. */
enum class Channel : std::uint8_t
{
    Input,      ///< external input pulse into input NPE `a`
    InRst,      ///< input NPE `a` rst
    InWrite,    ///< input NPE `a`, SC `b` write
    InSet0,     ///< input NPE `a` set0
    InSet1,     ///< input NPE `a` set1
    OutRst,     ///< output NPE `a` rst
    OutWrite,   ///< output NPE `a`, SC `b` write
    OutSet0,    ///< output NPE `a` set0
    OutSet1,    ///< output NPE `a` set1
    SynRst,     ///< synapse (a, b): clear switch + taps
    SynStrength ///< synapse (a, b): arm switch and `c` - 1 taps
};

/** One timed pulse (or small pulse batch for synapse channels). */
struct PulseOp
{
    Tick at;
    Channel channel;
    int a = 0; ///< NPE index / synapse row
    int b = 0; ///< SC index / synapse column
    int c = 0; ///< strength operand (SynStrength only)
};

/** Human-readable channel name. */
const char *channelName(Channel ch);

/** A complete timed pulse program. */
struct PulseProgram
{
    std::vector<PulseOp> ops;
    /** Time-step window boundaries (size = steps + 1). */
    std::vector<Tick> step_bounds;

    /** Total pulses, expanding strength batches. */
    long totalPulses() const;

    /** Ops within [from, to), in order. */
    std::vector<PulseOp> opsInWindow(Tick from, Tick to) const;

    /** End time of the program (after the last op). */
    Tick endTime() const;

    /** One-line-per-op text dump (debugging / golden files). */
    std::string dump() const;

    /**
     * Validate well-formedness: ops sorted by time, every write
     * preceded by a rst on the same NPE since the previous input,
     * every input preceded by a set on its NPE (the Sec. 5.2
     * ordering rules).
     * @return empty string if valid, else the first problem.
     */
    std::string validate() const;
};

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_PROGRAM_HH
