/**
 * @file
 * Chip resource budgets and typed compiler errors.
 *
 * Table 2 gives the realizability envelope of one chip: total JJ
 * count and die area for the fabric, plus the 2^sc_per_npe state
 * budget per NPE. `ChipBudget` carries those caps; `BudgetReport` is
 * the cost model's roll-up of a (sub)network against them. The
 * default caps (`ChipBudget::tableDefaults`) are the actual fabric
 * cost from `fabric::designPoint` — Table 2-calibrated — plus a
 * weight/preload bank allowance sized so the paper's flagship
 * 784-800-10 model fits a single 16x16 chip (see DESIGN.md Sec 4.12
 * for the Table 2 -> budget mapping).
 */

#ifndef SUSHI_COMPILER_BUDGET_HH
#define SUSHI_COMPILER_BUDGET_HH

#include <stdexcept>
#include <string>

namespace sushi::compiler {

/**
 * Typed compile-entry error. Unlike `sushi_fatal` (which exits) these
 * are thrown so serving layers can reject a bad model or an
 * unrealizable plan without taking the process down.
 */
class CompileError : public std::runtime_error
{
  public:
    enum class Kind
    {
        BadChipConfig,  ///< n <= 0, sc_per_npe out of [1, 30], ...
        BadBudget,      ///< negative/zero caps handed to the driver
        BudgetOverflow, ///< model cannot fit the allowed chips
        EmptyNetwork,   ///< network with no layers
    };

    CompileError(Kind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {}

    Kind kind() const noexcept { return kind_; }

    /** Stable name for logs/tests ("BadChipConfig", ...). */
    static const char *kindName(Kind kind);

  private:
    Kind kind_;
};

/** Per-chip resource caps the compiler plans against. */
struct ChipBudget
{
    /** Total JJs one chip may carry (fabric + resident model). */
    long jj_cap = 0;
    /** Die area cap, mm^2. */
    double area_cap_mm2 = 0.0;
    /** SC bits per NPE (state budget 2^sc_per_npe). */
    int sc_per_npe = 10;

    /**
     * Default caps for an @p n wide mesh: the design's own fabric
     * cost plus a banked-storage allowance of 2560*n^2 synapse bits
     * and 4*n^2 neuron preload words (the flagship 784-800-10 model
     * fills ~97 % of the n = 16 allowance).
     */
    static ChipBudget tableDefaults(int n, int sc_per_npe);
};

/** Cost roll-up of a (sub)network against one chip's budget. */
struct BudgetReport
{
    /** The caps this report was checked against. */
    ChipBudget budget{};

    /** Mesh fabric cost (crosspoints, NPEs, wiring). */
    long fabric_jjs = 0;
    double fabric_area_mm2 = 0.0;

    /** Resident model cost (weight bank + preload bank). */
    long model_jjs = 0;
    double model_area_mm2 = 0.0;

    /** Synapse count rolled into model_jjs. */
    long synapses = 0;

    /** Max over layers of the scheduled state range (informational:
     *  overflow shows up as disabled neurons, not a hard failure). */
    int required_states = 0;

    long totalJjs() const { return fabric_jjs + model_jjs; }
    double totalAreaMm2() const
    {
        return fabric_area_mm2 + model_area_mm2;
    }

    /** Utilisation fractions against the caps (0 when uncapped). */
    double jjUtilisation() const;
    double areaUtilisation() const;

    bool fitsJjs() const { return totalJjs() <= budget.jj_cap; }
    bool fitsArea() const
    {
        return totalAreaMm2() <= budget.area_cap_mm2;
    }
    /** Hard realizability: JJ and area caps both respected. */
    bool fits() const { return fitsJjs() && fitsArea(); }
};

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_BUDGET_HH
