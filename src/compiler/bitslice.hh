/**
 * @file
 * Bit-slice SSNN layer slicing, paper Sec. 5.3 / Fig. 15.
 *
 * A layer larger than the on-chip mesh is decomposed into blocks:
 * the input dimension is sliced to the mesh width (each slice is one
 * batch of row inputs) and the output dimension is sliced into
 * groups of output NPEs. The state-preserving SCs carry the partial
 * sums between input slices, so no extra storage or control is
 * needed between the recoded slices.
 */

#ifndef SUSHI_COMPILER_BITSLICE_HH
#define SUSHI_COMPILER_BITSLICE_HH

#include "common/logging.hh"

namespace sushi::compiler {

/** A half-open index range [begin, end). */
struct Block
{
    int begin;
    int end;

    int size() const { return end - begin; }
};

/** Slicing of one layer onto an N-wide mesh. */
struct LayerSlices
{
    int in_dim;
    int out_dim;
    int width; ///< mesh dimension N

    /** Number of input slices, ceil(in_dim / width). */
    int
    numInBlocks() const
    {
        return (in_dim + width - 1) / width;
    }

    /** Number of output groups, ceil(out_dim / width). */
    int
    numOutBlocks() const
    {
        return (out_dim + width - 1) / width;
    }

    /** The k-th input slice. */
    Block
    inBlock(int k) const
    {
        sushi_assert(k >= 0 && k < numInBlocks());
        const int b = k * width;
        return Block{b, b + width > in_dim ? in_dim : b + width};
    }

    /** The k-th output group. */
    Block
    outBlock(int k) const
    {
        sushi_assert(k >= 0 && k < numOutBlocks());
        const int b = k * width;
        return Block{b, b + width > out_dim ? out_dim : b + width};
    }

    /** Total chip passes = input slices x output groups. */
    long
    totalBlocks() const
    {
        return static_cast<long>(numInBlocks()) * numOutBlocks();
    }
};

/** Slice a layer of the given dimensions onto an N-wide mesh. */
LayerSlices sliceLayer(int in_dim, int out_dim, int width);

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_BITSLICE_HH
