#include "compiler/bitslice.hh"

namespace sushi::compiler {

LayerSlices
sliceLayer(int in_dim, int out_dim, int width)
{
    sushi_assert(in_dim >= 1);
    sushi_assert(out_dim >= 1);
    sushi_assert(width >= 1);
    return LayerSlices{in_dim, out_dim, width};
}

} // namespace sushi::compiler
