/**
 * @file
 * Pass-based compiler driver (Fig. 12, made cost-aware).
 *
 * The driver runs a fixed pass sequence per layer —
 *
 *   analyze -> slice -> schedule (bucket/reorder candidates)
 *           -> budget-check -> place
 *
 * — where the schedule pass builds *candidate* schedules (unbucketed
 * exact traversal, alternating-polarity buckets) and *selects* one
 * instead of applying a rule unconditionally:
 *
 *  - the legacy preset (`DriverOptions::legacy()`, the default) keeps
 *    the paper's Sec. 5.1 rule — first candidate whose state range
 *    fits wins, unbucketed preferred — and is bit-identical to the
 *    historical `compileNetwork`;
 *  - the cost-aware preset (`DriverOptions::costAware()`) scores
 *    fitting candidates by reload cost (Sec. 4.2.2) and enforces the
 *    `ChipBudget`, splitting an overflowing model into a
 *    `MultiChipPlan` of per-chip stages.
 */

#ifndef SUSHI_COMPILER_DRIVER_HH
#define SUSHI_COMPILER_DRIVER_HH

#include "compiler/budget.hh"
#include "compiler/compile.hh"
#include "compiler/cost_model.hh"
#include "compiler/multichip.hh"
#include "snn/binarize.hh"

namespace sushi::compiler {

/** Driver preset knobs. Default-constructed == legacy(). */
struct DriverOptions
{
    /**
     * Per-chip caps. Caps of 0 mean "fill from
     * ChipBudget::tableDefaults(chip)" at compile entry; negative
     * caps are rejected with CompileError{BadBudget}.
     */
    ChipBudget budget{};
    /** Reject / split models whose roll-up overflows the caps.
     *  Off: the budget is still computed and reported, never
     *  enforced (the legacy behaviour). */
    bool enforce_budget = false;
    /** Score fitting schedule candidates by reload cost instead of
     *  taking the first fit. */
    bool score_schedules = false;
    /** Allow splitting an overflowing model across chips (needs
     *  enforce_budget). */
    bool allow_multichip = false;
    /** Most chips a plan may use. */
    int max_chips = 64;

    /** The historical single-chip behaviour, bit-identical. */
    static DriverOptions legacy() { return DriverOptions{}; }

    /** Budget-enforcing, reload-scored, multi-chip-splitting. */
    static DriverOptions
    costAware()
    {
        DriverOptions o;
        o.enforce_budget = true;
        o.score_schedules = true;
        o.allow_multichip = true;
        return o;
    }
};

/**
 * Validate a chip geometry at compile entry. Throws
 * CompileError{BadChipConfig} on n <= 0, sc_per_npe outside [1, 30]
 * or a non-positive bucket size.
 */
void validateChipConfig(const ChipConfig &chip);

/** The staged compiler. */
class CompilerDriver
{
  public:
    explicit CompilerDriver(DriverOptions options = {});

    const DriverOptions &options() const { return options_; }

    /**
     * Compile onto exactly one chip. With enforce_budget set, throws
     * CompileError{BudgetOverflow} when the roll-up overflows the
     * caps; otherwise the report is attached to the result
     * (`CompiledNetwork::budget`) without being enforced.
     */
    CompiledNetwork compileSingle(const snn::BinarySnn &net,
                                  const ChipConfig &chip) const;

    /**
     * Compile into a (possibly multi-chip) plan. A model that fits
     * one chip — or a non-enforcing preset — yields a single-stage
     * plan. Each stage owns a copy of its layer range, so the plan
     * is self-contained and outlives @p net.
     */
    MultiChipPlan compilePlan(const snn::BinarySnn &net,
                              const ChipConfig &chip) const;

  private:
    /** Resolve zero caps to table defaults; reject negatives. */
    ChipBudget resolveBudget(const ChipConfig &chip) const;

    CompiledLayer compileLayerPasses(const snn::BinaryLayer &layer,
                                     const ChipConfig &chip) const;

    DriverOptions options_;
};

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_DRIVER_HH
