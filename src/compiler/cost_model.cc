#include "compiler/cost_model.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"
#include "fabric/resource_model.hh"
#include "sfq/cell_params.hh"

namespace sushi::compiler {

BitCost
synapseBitCost()
{
    const auto &ndro = sfq::cellParams(sfq::CellKind::NDRO);
    return BitCost{ndro.jjs, ndro.area_um2 *
                                 sfq::storageArrayDensity() * 1e-6};
}

BitCost
preloadBitCost()
{
    const auto &dff = sfq::cellParams(sfq::CellKind::DFF);
    return BitCost{dff.jjs, dff.area_um2 *
                                sfq::storageArrayDensity() * 1e-6};
}

FabricCost
fabricCost(int n)
{
    // designPoint builds the full mesh netlist — cache per width so
    // repeated compiles (engine replicas, fuzz tests) pay it once.
    static std::mutex mu;
    static std::map<int, FabricCost> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    const fabric::DesignPoint dp = fabric::designPoint(n);
    FabricCost fc{dp.total_jjs, dp.area_mm2};
    cache.emplace(n, fc);
    return fc;
}

CostModel::CostModel(int n, int sc_per_npe)
    : n_(n), sc_per_npe_(sc_per_npe), fabric_(fabricCost(n))
{
    sushi_assert(n >= 1);
    sushi_assert(sc_per_npe >= 1);
}

LayerCost
CostModel::layerCost(std::size_t in_dim, std::size_t out_dim) const
{
    const BitCost syn = synapseBitCost();
    const BitCost pre = preloadBitCost();
    LayerCost c;
    c.synapses = static_cast<long>(in_dim) *
                 static_cast<long>(out_dim);
    c.weight_jjs = c.synapses * syn.jjs;
    c.weight_area_mm2 =
        static_cast<double>(c.synapses) * syn.area_mm2;
    const long preload_bits =
        static_cast<long>(out_dim) * sc_per_npe_;
    c.preload_jjs = preload_bits * pre.jjs;
    c.preload_area_mm2 =
        static_cast<double>(preload_bits) * pre.area_mm2;
    return c;
}

LayerCost
CostModel::layerCost(const snn::BinaryLayer &layer) const
{
    return layerCost(layer.inDim(), layer.outDim());
}

double
CostModel::switchEnergyPerSynOpJ() const
{
    return sfq::synapseEventJjs() * sfq::switchEnergyPerJj();
}

BudgetReport
CostModel::rollUp(const std::vector<LayerCost> &costs,
                  std::size_t begin, std::size_t end,
                  const ChipBudget &budget) const
{
    sushi_assert(begin <= end && end <= costs.size());
    BudgetReport r;
    r.budget = budget;
    r.fabric_jjs = fabric_.jjs;
    r.fabric_area_mm2 = fabric_.area_mm2;
    for (std::size_t i = begin; i < end; ++i) {
        r.synapses += costs[i].synapses;
        r.model_jjs += costs[i].totalJjs();
        r.model_area_mm2 += costs[i].totalAreaMm2();
    }
    return r;
}

BudgetReport
CostModel::rollUp(const std::vector<LayerCost> &costs,
                  const ChipBudget &budget) const
{
    return rollUp(costs, 0, costs.size(), budget);
}

} // namespace sushi::compiler
