/**
 * @file
 * Convolutional-layer lowering — an extension beyond the paper's
 * fabricated workload.
 *
 * The paper's background (Sec. 2.2) notes SNN topologies include
 * convolutional layers, and its future work aims at "more functional
 * superconducting neuromorphic processing units". SUSHI's mesh +
 * bit-slice method can already execute any linear layer, so a binary
 * convolution lowers to a (sparse, weight-tied) fully-connected
 * BinaryLayer: one output neuron per (kernel, window) position whose
 * row holds the kernel signs at the window and zeros elsewhere —
 * realised on chip as switched-off synapses (strength 0).
 *
 * Because BinaryLayer stores dense {-1,+1} rows, the lowering keeps
 * an explicit active-synapse mask: off-window positions are encoded
 * as "+1 with the switch off", which the compiler's strength
 * configuration handles naturally (strength 0 disables a crosspoint,
 * Sec. 4.2.1).
 */

#ifndef SUSHI_COMPILER_CONV_LOWERING_HH
#define SUSHI_COMPILER_CONV_LOWERING_HH

#include <cstdint>
#include <vector>

#include "snn/binarize.hh"

namespace sushi::compiler {

/** A binary 2-D convolution specification. */
struct BinaryConvSpec
{
    int in_h = 0;
    int in_w = 0;
    /** kernels[k][ky][kx] in {-1, +1}. */
    std::vector<std::vector<std::vector<std::int8_t>>> kernels;
    int stride = 1;
    /** Integer firing threshold per kernel. */
    std::vector<int> thresholds;

    int kernelSide() const
    {
        return kernels.empty()
                   ? 0
                   : static_cast<int>(kernels[0].size());
    }
    int outH() const
    {
        return (in_h - kernelSide()) / stride + 1;
    }
    int outW() const
    {
        return (in_w - kernelSide()) / stride + 1;
    }
    std::size_t outDim() const
    {
        return kernels.size() *
               static_cast<std::size_t>(outH() * outW());
    }
};

/** A lowered convolution: the dense layer plus its synapse mask. */
struct LoweredConv
{
    snn::BinaryLayer layer;
    /** active[o][i]: true where the synapse carries a kernel tap
     *  (strength 1); false = switched off (strength 0). */
    std::vector<std::vector<std::uint8_t>> active;
};

/** Lower a binary convolution to a (masked) fully-connected layer. */
LoweredConv lowerConv(const BinaryConvSpec &spec);

/**
 * Direct reference: membrane of kernel @p k at output position
 * (@p oy, @p ox) on a binary frame, for testing the lowering.
 */
int convMembrane(const BinaryConvSpec &spec,
                 const std::vector<std::uint8_t> &frame, int k,
                 int oy, int ox);

/**
 * Stateless conv step on a binary frame using the *lowered* layer
 * with its mask applied (the chip semantics: masked synapses deliver
 * no pulses).
 */
std::vector<std::uint8_t>
loweredConvStep(const LoweredConv &conv,
                const std::vector<std::uint8_t> &frame);

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_CONV_LOWERING_HH
