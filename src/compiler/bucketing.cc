#include "compiler/bucketing.hh"

#include <algorithm>
#include <numeric>

namespace sushi::compiler {

namespace {

/**
 * Sort key for reordering: the input's polarity signature across
 * output columns, summarised as (negative-synapse count, first few
 * signs). Inputs with similar signatures end up adjacent, so the
 * row-major deal across slices reuses crosspoint configurations.
 */
long
signatureKey(const snn::BinaryLayer &layer, int input)
{
    long neg = 0;
    for (std::size_t o = 0; o < layer.outDim(); ++o)
        neg += layer.weights[o][static_cast<std::size_t>(input)] < 0
                   ? 1
                   : 0;
    long key = neg << 16;
    // Tie-break on the leading column signs for stability of the
    // grouping.
    const std::size_t lead = std::min<std::size_t>(16, layer.outDim());
    for (std::size_t o = 0; o < lead; ++o) {
        key = (key << 1) |
              (layer.weights[o][static_cast<std::size_t>(input)] > 0
                   ? 1
                   : 0);
    }
    return key;
}

} // namespace

LayerSchedule
scheduleLayer(const snn::BinaryLayer &layer, const BucketingConfig &cfg)
{
    const int in_dim = static_cast<int>(layer.inDim());
    LayerSchedule sched;
    sched.order.resize(static_cast<std::size_t>(in_dim));
    std::iota(sched.order.begin(), sched.order.end(), 0);

    if (cfg.reorder) {
        std::vector<int> sorted = sched.order;
        std::stable_sort(sorted.begin(), sorted.end(),
                         [&](int a, int b) {
                             return signatureKey(layer, a) <
                                    signatureKey(layer, b);
                         });
        // Deal the sorted inputs row-major across slices: the
        // crosspoint at mesh row r then sees a contiguous sorted run
        // across adjacent slices, which is what lets adjacent
        // batches share NDRO configurations (Sec. 4.2.2).
        const int width = std::max(1, cfg.mesh_width);
        const int blocks = (in_dim + width - 1) / width;
        std::size_t take = 0;
        for (int r = 0; r < width && take < sorted.size(); ++r) {
            for (int b = 0; b < blocks; ++b) {
                const int pos = b * width + r;
                if (pos >= in_dim)
                    continue;
                sched.order[static_cast<std::size_t>(pos)] =
                    sorted[take++];
            }
        }
    }

    if (cfg.bucketing) {
        const int bs = std::max(1, cfg.bucket_size);
        std::vector<Block> buckets;
        for (int b = 0; b < in_dim; b += bs)
            buckets.push_back(Block{b, std::min(in_dim, b + bs)});

        // "Possible firing spikes appear last" (Sec. 5.1): order
        // the buckets by ascending aggregate net weight, so
        // net-inhibitory buckets run first and the threshold
        // crossings land in the final, net-excitatory buckets. The
        // within-bucket pos/neg pairing keeps each dip bounded.
        std::vector<long> net(buckets.size(), 0);
        for (std::size_t b = 0; b < buckets.size(); ++b) {
            for (int k = buckets[b].begin; k < buckets[b].end;
                 ++k) {
                const auto idx = static_cast<std::size_t>(
                    sched.order[static_cast<std::size_t>(k)]);
                for (std::size_t o = 0; o < layer.outDim(); ++o)
                    net[b] += layer.weights[o][idx];
            }
        }
        std::vector<std::size_t> perm(buckets.size());
        std::iota(perm.begin(), perm.end(), 0);
        std::stable_sort(perm.begin(), perm.end(),
                         [&](std::size_t a, std::size_t b) {
                             return net[a] < net[b];
                         });
        // Rebuild the order array bucket-by-bucket in the new
        // sequence and re-anchor the bucket ranges.
        std::vector<int> new_order;
        new_order.reserve(sched.order.size());
        std::vector<Block> new_buckets;
        for (std::size_t p : perm) {
            const int begin = static_cast<int>(new_order.size());
            for (int k = buckets[p].begin; k < buckets[p].end; ++k)
                new_order.push_back(
                    sched.order[static_cast<std::size_t>(k)]);
            new_buckets.push_back(
                Block{begin, static_cast<int>(new_order.size())});
        }
        sched.order = std::move(new_order);
        sched.buckets = std::move(new_buckets);
    } else {
        sched.buckets.push_back(Block{0, in_dim});
    }
    return sched;
}

StateRangeReport
analyzeStateRange(const snn::BinaryLayer &layer,
                  const LayerSchedule &schedule,
                  const BucketingConfig &cfg)
{
    StateRangeReport report;
    report.state_budget = 1 << cfg.state_bits;

    int worst = 0, worst_unbucketed = 0;
    for (std::size_t o = 0; o < layer.outDim(); ++o) {
        const auto &w = layer.weights[o];
        const int theta = std::max(1, layer.thresholds[o]);

        // Walk the schedule: inhibitory pass then excitatory pass
        // per bucket, all inputs active (worst case).
        int sum = 0, min_sum = 0;
        long total_neg = 0;
        for (const Block &bucket : schedule.buckets) {
            int neg = 0, pos = 0;
            for (int k = bucket.begin; k < bucket.end; ++k) {
                const int idx =
                    schedule.order[static_cast<std::size_t>(k)];
                if (w[static_cast<std::size_t>(idx)] < 0)
                    ++neg;
                else
                    ++pos;
            }
            total_neg += neg;
            sum -= neg;
            min_sum = std::min(min_sum, sum);
            sum += pos;
        }
        // The counter needs theta states above the preload and
        // |min_sum| below it.
        worst = std::max(worst, theta - min_sum);
        worst_unbucketed =
            std::max(worst_unbucketed,
                     theta + static_cast<int>(total_neg));
    }
    report.required_states = worst;
    report.required_states_unbucketed = worst_unbucketed;
    return report;
}

long
countReloads(const snn::BinaryLayer &layer,
             const LayerSchedule &schedule, int mesh_width)
{
    sushi_assert(mesh_width >= 1);
    const int in_dim = static_cast<int>(layer.inDim());
    const int blocks = (in_dim + mesh_width - 1) / mesh_width;
    long reloads = 0;
    // Crosspoint (r, j) is used by the input at position
    // b * mesh_width + r of the schedule in block b.
    for (int r = 0; r < mesh_width; ++r) {
        for (std::size_t o = 0; o < layer.outDim(); ++o) {
            int prev_sign = 0; // unknown: the first block always
                               // configures, counted once below
            for (int b = 0; b < blocks; ++b) {
                const int pos = b * mesh_width + r;
                if (pos >= in_dim)
                    break;
                const int idx =
                    schedule.order[static_cast<std::size_t>(pos)];
                const int sign =
                    layer.weights[o][static_cast<std::size_t>(idx)] <
                            0
                        ? -1
                        : 1;
                if (sign != prev_sign)
                    ++reloads;
                prev_sign = sign;
            }
        }
    }
    return reloads;
}

} // namespace sushi::compiler
