#include "compiler/pulse_encoder.hh"

#include "common/logging.hh"
#include "sfq/constraints.hh"

namespace sushi::compiler {

PulseProgram
encodeLayerProgram(
    const CompiledNetwork &cnet,
    const std::vector<std::vector<std::uint8_t>> &frames,
    const EncoderConfig &cfg)
{
    sushi_assert(cnet.net != nullptr);
    sushi_assert(cnet.layers.size() == 1);
    const auto &layer = cnet.layers[0];
    const auto &blayer = cnet.net->layers()[0];
    const int in_dim = static_cast<int>(blayer.inDim());
    const int out_dim = static_cast<int>(blayer.outDim());
    const int n = cnet.chip.n;
    const int k = cnet.chip.sc_per_npe;
    sushi_assert(in_dim <= n && out_dim <= n);

    const Tick gap =
        cfg.spacing ? cfg.spacing : sfq::safePulseSpacing();
    const Tick guard = cfg.phase_guard * gap;

    PulseProgram prog;
    Tick t = gap;
    auto emit = [&](Channel ch, int a, int b = 0, int c = 0) {
        prog.ops.push_back(PulseOp{t, ch, a, b, c});
        t += gap;
        // An NPE rst triggers the SC-internal readout/toggle-back
        // sequence (~50 ps); give it a second interval to settle
        // before the write that follows (Sec. 5.2 ordering).
        if (ch == Channel::OutRst || ch == Channel::InRst)
            t += gap;
    };

    for (const auto &frame : frames) {
        sushi_assert(static_cast<int>(frame.size()) == in_dim);
        prog.step_bounds.push_back(t);

        // Step start: reset and preload the output NPEs
        // (Sec. 5.2: write must follow rst).
        for (int j = 0; j < out_dim; ++j) {
            if (layer.disabled[static_cast<std::size_t>(j)])
                continue;
            emit(Channel::OutRst, j);
            const std::uint64_t preload =
                layer.preload[static_cast<std::size_t>(j)];
            for (int b = 0; b < k; ++b)
                if (preload & (std::uint64_t{1} << b))
                    emit(Channel::OutWrite, j, b);
        }
        t += guard;

        // Two polarity passes per bucket (gate scale: one bucket).
        for (int pass = 0; pass < 2; ++pass) {
            const bool neg = pass == 0;
            // Weight configuration stream (Fig. 12(e)): arm exactly
            // the crosspoints of this pass's polarity.
            for (int i = 0; i < in_dim; ++i) {
                for (int j = 0; j < out_dim; ++j) {
                    const bool w_neg =
                        blayer.weights[static_cast<std::size_t>(j)]
                                      [static_cast<std::size_t>(i)] <
                        0;
                    emit(Channel::SynRst, i, j,
                         cnet.chip.n /*tap clears, informational*/);
                    if (w_neg == neg)
                        emit(Channel::SynStrength, i, j, 1);
                }
            }
            // Polarity at the output neurons.
            for (int j = 0; j < out_dim; ++j) {
                if (layer.disabled[static_cast<std::size_t>(j)])
                    continue;
                emit(neg ? Channel::OutSet0 : Channel::OutSet1, j);
            }
            t += guard;

            // Input pulse stream (Fig. 12(f)): each active input's
            // relay NPE is re-armed (rst -> write all bits -> set1)
            // then fired once.
            for (int i = 0; i < in_dim; ++i) {
                if (!frame[static_cast<std::size_t>(i)])
                    continue;
                emit(Channel::InRst, i);
                for (int b = 0; b < k; ++b)
                    emit(Channel::InWrite, i, b);
                emit(Channel::InSet1, i);
                emit(Channel::Input, i);
                t += guard; // let the spike propagate the fabric
            }
        }
        t += guard;
    }
    prog.step_bounds.push_back(t);
    return prog;
}

} // namespace sushi::compiler
