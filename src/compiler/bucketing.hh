/**
 * @file
 * Synapse bucketing and reordering, paper Sec. 5.1 / Sec. 4.2.2.
 *
 * Two problems are solved at compile time, acting once on the
 * trained synapses:
 *
 * 1. *State-range control (bucketing).* The NPE counter wraps: a
 *    net-inhibitory excursion below the pre-loaded value emits a
 *    spurious borrow spike ("overflow of the lower number of
 *    states"). Traversing all inhibitory synapses first bounds the
 *    membrane minimum but maximises the dip; splitting the inputs
 *    into buckets and alternating an inhibitory pass and an
 *    excitatory pass per bucket keeps the running value within the
 *    state budget while still making firing spikes appear last
 *    within each bucket.
 *
 * 2. *Weight-reload minimisation (reordering).* Between adjacent
 *    input slices the same cross structure is reused by a different
 *    synapse; if both synapses share polarity (and strength) the
 *    NDRO configuration needs no reload. Sorting inputs by their
 *    sign pattern across columns and dealing them row-major across
 *    slices makes adjacent slices share configurations.
 */

#ifndef SUSHI_COMPILER_BUCKETING_HH
#define SUSHI_COMPILER_BUCKETING_HH

#include <vector>

#include "compiler/bitslice.hh"
#include "snn/binarize.hh"

namespace sushi::compiler {

/** Bucketing/reordering knobs. */
struct BucketingConfig
{
    /** SCs per NPE: the state budget is 2^state_bits. */
    int state_bits = 10;
    /** Alternate inhibitory/excitatory passes per bucket. When
     *  false, one inhibitory pass over the whole layer runs first
     *  (the un-bucketed Sec. 5.1 baseline). */
    bool bucketing = true;
    /** Inputs per bucket (rounded up to whole slices at run time). */
    int bucket_size = 64;
    /** Sort inputs to minimise cross-structure reloads. */
    bool reorder = true;
    /** Mesh width the reordered inputs will be dealt across (the
     *  crosspoint at row r is reused by the inputs at positions
     *  b*mesh_width + r of the schedule for successive slices b). */
    int mesh_width = 16;
};

/** The per-layer traversal schedule. */
struct LayerSchedule
{
    /** Permutation: order[k] is the original input index processed
     *  at position k. */
    std::vector<int> order;
    /** Bucket ranges over positions (cover [0, in_dim)). */
    std::vector<Block> buckets;
};

/** Build the schedule for one binarized layer. */
LayerSchedule scheduleLayer(const snn::BinaryLayer &layer,
                            const BucketingConfig &cfg);

/** Worst-case (all inputs active) state-range analysis. */
struct StateRangeReport
{
    /** States needed with the schedule: max over neurons of
     *  threshold + deepest inhibitory dip. */
    int required_states;
    /** States needed when all inhibitory synapses run first. */
    int required_states_unbucketed;
    /** The chip's budget, 2^state_bits. */
    int state_budget;

    bool fits() const { return required_states <= state_budget; }
    bool
    fitsUnbucketed() const
    {
        return required_states_unbucketed <= state_budget;
    }
};

/** Analyse the state range a schedule demands of the NPEs. */
StateRangeReport analyzeStateRange(const snn::BinaryLayer &layer,
                                   const LayerSchedule &schedule,
                                   const BucketingConfig &cfg);

/**
 * Count cross-structure reload events across adjacent input slices:
 * a crosspoint reused by a synapse of different polarity needs its
 * NDRO configuration rewritten (Sec. 4.2.2).
 */
long countReloads(const snn::BinaryLayer &layer,
                  const LayerSchedule &schedule, int mesh_width);

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_BUCKETING_HH
