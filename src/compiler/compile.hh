/**
 * @file
 * The SSNN-to-chip compiler: turns a binarized network into the
 * per-layer execution plan of Fig. 12 (slices, schedules, preloads,
 * reload counts) consumed by the SUSHI chip model.
 */

#ifndef SUSHI_COMPILER_COMPILE_HH
#define SUSHI_COMPILER_COMPILE_HH

#include <cstdint>
#include <vector>

#include "compiler/bitslice.hh"
#include "compiler/bucketing.hh"
#include "compiler/budget.hh"
#include "snn/binarize.hh"

namespace sushi::compiler {

/** The target chip geometry. */
struct ChipConfig
{
    /** Mesh dimension: N x N crosspoints, 2N NPEs. */
    int n = 16;
    /** SCs per NPE. */
    int sc_per_npe = 10;
    /** Bucketing/reordering configuration. */
    BucketingConfig bucketing;
};

/** One compiled layer. */
struct CompiledLayer
{
    LayerSlices slices;
    LayerSchedule schedule;
    StateRangeReport range;
    long switch_reloads; ///< cross-structure reload events per step

    /**
     * Per-output-neuron counter preload: 2^K - theta', where theta'
     * is the effective positive threshold after bias pulses.
     */
    std::vector<std::uint64_t> preload;
    /** Excitatory bias pulses delivered at step start (handles
     *  thresholds <= 0, which must always be able to fire). */
    std::vector<int> bias_pulses;
    /** Neurons whose thresholds exceed the state budget: they can
     *  never fire and are skipped (counted for diagnostics). */
    std::vector<std::uint8_t> disabled;

    /**
     * Fast membrane kernels: bitmask of negative / positive synapses
     * per neuron over the *scheduled* input order, 64 inputs per
     * word.
     */
    std::vector<std::vector<std::uint64_t>> neg_masks;
    std::vector<std::vector<std::uint64_t>> pos_masks;
};

/** A fully compiled network. */
struct CompiledNetwork
{
    ChipConfig chip;
    const snn::BinarySnn *net = nullptr;
    std::vector<CompiledLayer> layers;

    /** Budget analysis from the driver's cost model: fabric +
     *  resident model cost against the per-chip caps. Always
     *  computed; only enforced by budget-enforcing presets. */
    BudgetReport budget;
    /** Cached diagnostics (== disabledNeurons()/totalReloads()),
     *  filled at compile so the chip can surface them per step in
     *  O(1). */
    long disabled_count = 0;
    long plan_reloads = 0;

    /** Total cross-structure reload events per time step. */
    long totalReloads() const;

    /** Number of disabled (untrainable-threshold) neurons. */
    long disabledNeurons() const;
};

/**
 * Compile a binarized network for a chip — the *legacy preset* of
 * the pass-based `CompilerDriver` (driver.hh): single chip, budget
 * reported but not enforced, paper-rule schedule selection.
 * Bit-identical to the historical single-shot compiler. Throws
 * CompileError{BadChipConfig} on an invalid geometry.
 */
CompiledNetwork compileNetwork(const snn::BinarySnn &net,
                               const ChipConfig &chip);

/**
 * Degraded-mode plan for a mesh with failed output-NPE slots.
 *
 * Output neurons are assigned round-robin to the N output NPEs of a
 * group (neuron o sits on slot o mod N). When a slot's NPE has
 * failed (flux trap, dead junction), its neurons are time-multiplexed
 * onto the healthy slots in extra serialized passes per output group:
 * each extra pass re-streams the input slice and needs its own
 * crosspoint configuration batch (the reload-awareness the chip's
 * timing model charges for).
 */
struct NpeRemap
{
    /** Host slot per output slot; host[s] == s for healthy slots. */
    std::vector<int> host;
    /** Number of failed output slots. */
    int failed = 0;
    /** Extra serialized passes needed per output group,
     *  ceil(failed / healthy). */
    int extra_passes = 0;
};

/**
 * Plan the remap for an @p n wide mesh given @p failed_slots
 * (size n, nonzero = failed). Fatal if every slot has failed — a
 * fully dead mesh cannot be degraded around.
 */
NpeRemap planNpeRemap(int n,
                      const std::vector<std::uint8_t> &failed_slots);

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_COMPILE_HH
