/**
 * @file
 * The SSNN-to-chip compiler: turns a binarized network into the
 * per-layer execution plan of Fig. 12 (slices, schedules, preloads,
 * reload counts) consumed by the SUSHI chip model.
 */

#ifndef SUSHI_COMPILER_COMPILE_HH
#define SUSHI_COMPILER_COMPILE_HH

#include <cstdint>
#include <vector>

#include "compiler/bitslice.hh"
#include "compiler/bucketing.hh"
#include "snn/binarize.hh"

namespace sushi::compiler {

/** The target chip geometry. */
struct ChipConfig
{
    /** Mesh dimension: N x N crosspoints, 2N NPEs. */
    int n = 16;
    /** SCs per NPE. */
    int sc_per_npe = 10;
    /** Bucketing/reordering configuration. */
    BucketingConfig bucketing;
};

/** One compiled layer. */
struct CompiledLayer
{
    LayerSlices slices;
    LayerSchedule schedule;
    StateRangeReport range;
    long switch_reloads; ///< cross-structure reload events per step

    /**
     * Per-output-neuron counter preload: 2^K - theta', where theta'
     * is the effective positive threshold after bias pulses.
     */
    std::vector<std::uint64_t> preload;
    /** Excitatory bias pulses delivered at step start (handles
     *  thresholds <= 0, which must always be able to fire). */
    std::vector<int> bias_pulses;
    /** Neurons whose thresholds exceed the state budget: they can
     *  never fire and are skipped (counted for diagnostics). */
    std::vector<std::uint8_t> disabled;

    /**
     * Fast membrane kernels: bitmask of negative / positive synapses
     * per neuron over the *scheduled* input order, 64 inputs per
     * word.
     */
    std::vector<std::vector<std::uint64_t>> neg_masks;
    std::vector<std::vector<std::uint64_t>> pos_masks;
};

/** A fully compiled network. */
struct CompiledNetwork
{
    ChipConfig chip;
    const snn::BinarySnn *net = nullptr;
    std::vector<CompiledLayer> layers;

    /** Total cross-structure reload events per time step. */
    long totalReloads() const;

    /** Number of disabled (untrainable-threshold) neurons. */
    long disabledNeurons() const;
};

/** Compile a binarized network for a chip. */
CompiledNetwork compileNetwork(const snn::BinarySnn &net,
                               const ChipConfig &chip);

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_COMPILE_HH
