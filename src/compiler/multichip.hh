/**
 * @file
 * Multi-chip plans: splitting a model whose resident cost overflows
 * one chip's budget across several chips.
 *
 * The layer chain is cut at layer boundaries only (a dense layer is
 * never split — a single layer that overflows a whole chip is a hard
 * `BudgetOverflow`). The splitter mirrors `sfq::partitionNetlist`'s
 * union-find contraction idiom: every boundary starts cut, then
 * boundaries are contracted heaviest-traffic-first (a cut at a wide
 * activation boundary costs the most inter-chip wiring) whenever the
 * merged component still fits one chip's budget. The surviving cuts
 * become the explicit inter-chip wire lists the NoC work (ROADMAP
 * item 2) will route.
 */

#ifndef SUSHI_COMPILER_MULTICHIP_HH
#define SUSHI_COMPILER_MULTICHIP_HH

#include <memory>
#include <vector>

#include "compiler/compile.hh"
#include "compiler/cost_model.hh"
#include "snn/binarize.hh"

namespace sushi::compiler {

/**
 * One surviving cut between adjacent chip stages.
 *
 * Ordering guarantee (the NoC packet schedule depends on it):
 * `MultiChipPlan::cuts` is sorted ascending by boundary_layer, and
 * each cut's wire_indices list is sorted ascending — both invariants
 * are enforced by construction in splitLayersUnderBudget, so packet
 * serialization order is byte-stable across plan rebuilds.
 */
struct InterChipCut
{
    /** Global index of the layer *producing* the crossing
     *  activations; the cut sits after this layer. */
    int boundary_layer = 0;
    /** Activation lines crossing the cut (producer outDim). */
    int wires = 0;
    /** Worst-case pulses per time step across the cut (binary
     *  activations: one pulse per wire). */
    long est_pulses_per_step = 0;
    /** The crossing activation lines in the producer's index space,
     *  ascending — the order spike-packet entries serialize in. */
    std::vector<int> wire_indices;
};

/**
 * One chip's share of the plan. Held behind a shared_ptr so the
 * `CompiledNetwork::net` pointer into the stage's own subnet stays
 * stable for the lifetime of the plan.
 */
struct ChipStage
{
    /** Global index of the first layer on this chip. */
    int first_layer = 0;
    int num_layers = 0;
    /** The stage's own copy of its layer range. */
    snn::BinarySnn subnet;
    /** Compiled artifact; `net.net == &subnet`. */
    CompiledNetwork net;

    ChipStage() = default;
    ChipStage(const ChipStage &) = delete;
    ChipStage &operator=(const ChipStage &) = delete;
};

/** The compiler's multi-chip output. */
struct MultiChipPlan
{
    ChipConfig chip;
    /** Per-chip caps every stage was planned against. */
    ChipBudget budget;
    std::vector<std::shared_ptr<const ChipStage>> stages;
    /** Cuts between adjacent stages (size stages - 1). */
    std::vector<InterChipCut> cuts;

    int numChips() const { return static_cast<int>(stages.size()); }

    /** Worst per-chip utilisation across stages. */
    double maxJjUtilisation() const;
    double maxAreaUtilisation() const;

    /** Total activation wires crossing chip boundaries. */
    long crossChipWires() const;

    /** Total worst-case pulses per time step across all cuts (the
     *  compiler's own traffic estimate the NoC benches cross-check
     *  observed flit counts against). */
    long cutTrafficPerStep() const;
};

/** Layer index ranges of a budget split, before stage compilation. */
struct StageSplit
{
    /** Contiguous [begin, end) layer ranges, in network order. */
    std::vector<Block> stages;
    std::vector<InterChipCut> cuts;
};

/**
 * Partition layers into the fewest contiguous chip stages the
 * contraction heuristic finds under @p budget. @p boundary_wires
 * holds outDim of each layer (boundary b carries boundary_wires[b]
 * wires). Throws CompileError{BudgetOverflow} when a single layer
 * overflows one chip or the split needs more than @p max_chips.
 */
StageSplit splitLayersUnderBudget(
    const std::vector<LayerCost> &costs,
    const std::vector<int> &boundary_wires, const CostModel &model,
    const ChipBudget &budget, int max_chips);

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_MULTICHIP_HH
