#include "compiler/multichip.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace sushi::compiler {

double
MultiChipPlan::maxJjUtilisation() const
{
    double u = 0.0;
    for (const auto &s : stages)
        u = std::max(u, s->net.budget.jjUtilisation());
    return u;
}

double
MultiChipPlan::maxAreaUtilisation() const
{
    double u = 0.0;
    for (const auto &s : stages)
        u = std::max(u, s->net.budget.areaUtilisation());
    return u;
}

long
MultiChipPlan::crossChipWires() const
{
    long w = 0;
    for (const auto &c : cuts)
        w += c.wires;
    return w;
}

long
MultiChipPlan::cutTrafficPerStep() const
{
    long p = 0;
    for (const auto &c : cuts)
        p += c.est_pulses_per_step;
    return p;
}

namespace {

/** Union-find with path compression (partitionNetlist idiom). */
int
findRoot(std::vector<int> &parent, int x)
{
    while (parent[static_cast<std::size_t>(x)] != x) {
        parent[static_cast<std::size_t>(x)] =
            parent[static_cast<std::size_t>(
                parent[static_cast<std::size_t>(x)])];
        x = parent[static_cast<std::size_t>(x)];
    }
    return x;
}

} // namespace

StageSplit
splitLayersUnderBudget(const std::vector<LayerCost> &costs,
                       const std::vector<int> &boundary_wires,
                       const CostModel &model,
                       const ChipBudget &budget, int max_chips)
{
    const int n_layers = static_cast<int>(costs.size());
    if (n_layers == 0)
        throw CompileError(CompileError::Kind::EmptyNetwork,
                           "cannot split an empty network");
    sushi_assert(boundary_wires.size() == costs.size());

    // Every layer starts as its own component; contract boundaries
    // heaviest-traffic-first (then by index for determinism) while
    // the merged component still fits one chip. Only adjacent
    // components ever merge, so components stay contiguous layer
    // intervals by construction.
    std::vector<int> parent(costs.size());
    std::iota(parent.begin(), parent.end(), 0);
    std::vector<long> comp_jjs(costs.size());
    std::vector<double> comp_area(costs.size());
    for (std::size_t i = 0; i < costs.size(); ++i) {
        comp_jjs[i] = costs[i].totalJjs();
        comp_area[i] = costs[i].totalAreaMm2();
    }

    std::vector<int> order(
        static_cast<std::size_t>(std::max(0, n_layers - 1)));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return boundary_wires[static_cast<std::size_t>(a)] >
               boundary_wires[static_cast<std::size_t>(b)];
    });

    const long fabric_jjs = model.fabricJjs();
    const double fabric_area = model.fabricAreaMm2();
    for (int b : order) {
        const int ra = findRoot(parent, b);
        const int rb = findRoot(parent, b + 1);
        if (ra == rb)
            continue;
        const long merged_jjs =
            comp_jjs[static_cast<std::size_t>(ra)] +
            comp_jjs[static_cast<std::size_t>(rb)];
        const double merged_area =
            comp_area[static_cast<std::size_t>(ra)] +
            comp_area[static_cast<std::size_t>(rb)];
        if (fabric_jjs + merged_jjs > budget.jj_cap ||
            fabric_area + merged_area > budget.area_cap_mm2)
            continue;
        parent[static_cast<std::size_t>(rb)] = ra;
        comp_jjs[static_cast<std::size_t>(ra)] = merged_jjs;
        comp_area[static_cast<std::size_t>(ra)] = merged_area;
    }

    StageSplit split;
    int begin = 0;
    for (int i = 1; i <= n_layers; ++i) {
        if (i < n_layers &&
            findRoot(parent, i) == findRoot(parent, begin))
            continue;
        split.stages.push_back(Block{begin, i});
        if (i < n_layers) {
            InterChipCut cut;
            cut.boundary_layer = i - 1;
            cut.wires =
                boundary_wires[static_cast<std::size_t>(i - 1)];
            cut.est_pulses_per_step = cut.wires;
            cut.wire_indices.resize(
                static_cast<std::size_t>(cut.wires));
            std::iota(cut.wire_indices.begin(),
                      cut.wire_indices.end(), 0);
            split.cuts.push_back(cut);
        }
        begin = i;
    }

    // Ordering guarantee for NoC packet schedules: cuts ascending by
    // boundary layer, wire lists ascending by index. Both hold by
    // construction above; the sorts pin the contract against future
    // traversal-order changes.
    std::sort(split.cuts.begin(), split.cuts.end(),
              [](const InterChipCut &a, const InterChipCut &b) {
                  return a.boundary_layer < b.boundary_layer;
              });
    for (auto &cut : split.cuts)
        std::sort(cut.wire_indices.begin(), cut.wire_indices.end());

    // A stage that still overflows can only be a single layer the
    // contraction could never have merged — the model is not
    // realizable on this chip at any split.
    for (const auto &st : split.stages) {
        const BudgetReport r = model.rollUp(
            costs, static_cast<std::size_t>(st.begin),
            static_cast<std::size_t>(st.end), budget);
        if (!r.fits())
            throw CompileError(
                CompileError::Kind::BudgetOverflow,
                "layer " + std::to_string(st.begin) + " needs " +
                    std::to_string(r.totalJjs()) + " JJs / " +
                    std::to_string(r.totalAreaMm2()) +
                    " mm^2 alone, over the per-chip cap of " +
                    std::to_string(budget.jj_cap) + " JJs / " +
                    std::to_string(budget.area_cap_mm2) + " mm^2");
    }
    if (static_cast<int>(split.stages.size()) > max_chips)
        throw CompileError(
            CompileError::Kind::BudgetOverflow,
            "model needs " + std::to_string(split.stages.size()) +
                " chips, over the plan limit of " +
                std::to_string(max_chips));
    return split;
}

} // namespace sushi::compiler
