#include "compiler/conv_lowering.hh"

#include "common/logging.hh"

namespace sushi::compiler {

LoweredConv
lowerConv(const BinaryConvSpec &spec)
{
    sushi_assert(spec.in_h >= 1 && spec.in_w >= 1);
    sushi_assert(!spec.kernels.empty());
    sushi_assert(spec.stride >= 1);
    const int ks = spec.kernelSide();
    sushi_assert(ks >= 1 && ks <= spec.in_h && ks <= spec.in_w);
    sushi_assert(spec.thresholds.size() == spec.kernels.size());
    for (const auto &kern : spec.kernels) {
        sushi_assert(static_cast<int>(kern.size()) == ks);
        for (const auto &row : kern)
            sushi_assert(static_cast<int>(row.size()) == ks);
    }

    const std::size_t in_dim =
        static_cast<std::size_t>(spec.in_h) * spec.in_w;
    const int oh = spec.outH();
    const int ow = spec.outW();

    LoweredConv out;
    for (std::size_t k = 0; k < spec.kernels.size(); ++k) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                std::vector<std::int8_t> row(in_dim, 1);
                std::vector<std::uint8_t> mask(in_dim, 0);
                for (int ky = 0; ky < ks; ++ky) {
                    for (int kx = 0; kx < ks; ++kx) {
                        const int iy = oy * spec.stride + ky;
                        const int ix = ox * spec.stride + kx;
                        const std::size_t idx =
                            static_cast<std::size_t>(iy) *
                                spec.in_w +
                            static_cast<std::size_t>(ix);
                        row[idx] =
                            spec.kernels[k]
                                        [static_cast<std::size_t>(
                                            ky)]
                                        [static_cast<std::size_t>(
                                            kx)];
                        mask[idx] = 1;
                    }
                }
                out.layer.weights.push_back(std::move(row));
                out.layer.thresholds.push_back(
                    spec.thresholds[k]);
                out.active.push_back(std::move(mask));
            }
        }
    }
    return out;
}

int
convMembrane(const BinaryConvSpec &spec,
             const std::vector<std::uint8_t> &frame, int k, int oy,
             int ox)
{
    sushi_assert(frame.size() ==
                 static_cast<std::size_t>(spec.in_h) * spec.in_w);
    const int ks = spec.kernelSide();
    int m = 0;
    for (int ky = 0; ky < ks; ++ky) {
        for (int kx = 0; kx < ks; ++kx) {
            const int iy = oy * spec.stride + ky;
            const int ix = ox * spec.stride + kx;
            if (frame[static_cast<std::size_t>(iy) * spec.in_w +
                      static_cast<std::size_t>(ix)]) {
                m += spec.kernels[static_cast<std::size_t>(k)]
                                 [static_cast<std::size_t>(ky)]
                                 [static_cast<std::size_t>(kx)];
            }
        }
    }
    return m;
}

std::vector<std::uint8_t>
loweredConvStep(const LoweredConv &conv,
                const std::vector<std::uint8_t> &frame)
{
    const std::size_t out_dim = conv.layer.outDim();
    sushi_assert(frame.size() == conv.layer.inDim());
    std::vector<std::uint8_t> spikes(out_dim, 0);
    for (std::size_t o = 0; o < out_dim; ++o) {
        int m = 0;
        const auto &row = conv.layer.weights[o];
        const auto &mask = conv.active[o];
        for (std::size_t i = 0; i < frame.size(); ++i)
            if (frame[i] && mask[i])
                m += row[i];
        spikes[o] =
            m >= conv.layer.thresholds[o] ? 1 : 0;
    }
    return spikes;
}

} // namespace sushi::compiler
