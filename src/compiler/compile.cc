#include "compiler/compile.hh"

#include <algorithm>

namespace sushi::compiler {

long
CompiledNetwork::totalReloads() const
{
    long total = 0;
    for (const auto &layer : layers)
        total += layer.switch_reloads;
    return total;
}

long
CompiledNetwork::disabledNeurons() const
{
    long total = 0;
    for (const auto &layer : layers)
        for (auto d : layer.disabled)
            total += d;
    return total;
}

namespace {

CompiledLayer
compileLayer(const snn::BinaryLayer &layer, const ChipConfig &chip)
{
    CompiledLayer out;
    BucketingConfig bcfg = chip.bucketing;
    bcfg.state_bits = chip.sc_per_npe;
    bcfg.mesh_width = chip.n;

    out.slices = sliceLayer(static_cast<int>(layer.inDim()),
                            static_cast<int>(layer.outDim()), chip.n);

    // Adaptive bucketing (Sec. 5.1): the exact traversal — all
    // inhibitory synapses first, so the counter crosses the
    // threshold at most once and only when the total demands it —
    // is used whenever its state range fits the NPE budget.
    // Alternating-polarity buckets trade a small chance of
    // premature firing for a bounded excursion, so they are only
    // engaged when the unbucketed range would overflow the states.
    if (bcfg.bucketing) {
        BucketingConfig single = bcfg;
        single.bucketing = false;
        LayerSchedule unbucketed = scheduleLayer(layer, single);
        StateRangeReport unb_range =
            analyzeStateRange(layer, unbucketed, single);
        if (unb_range.fitsUnbucketed()) {
            out.schedule = std::move(unbucketed);
            out.range = unb_range;
        } else {
            out.schedule = scheduleLayer(layer, bcfg);
            out.range =
                analyzeStateRange(layer, out.schedule, bcfg);
        }
    } else {
        out.schedule = scheduleLayer(layer, bcfg);
        out.range = analyzeStateRange(layer, out.schedule, bcfg);
    }
    out.switch_reloads = countReloads(layer, out.schedule, chip.n);

    const std::uint64_t budget = std::uint64_t{1} << chip.sc_per_npe;
    const std::size_t n_out = layer.outDim();
    out.preload.resize(n_out, 0);
    out.bias_pulses.resize(n_out, 0);
    out.disabled.resize(n_out, 0);
    for (std::size_t o = 0; o < n_out; ++o) {
        const int theta = layer.thresholds[o];
        // Thresholds <= 0 must still be able to fire: deliver bias
        // pulses so the effective threshold is at least 1.
        const int bias = std::max(0, 1 - theta);
        const int eff = theta + bias; // >= 1
        if (static_cast<std::uint64_t>(eff) >= budget) {
            // Cannot be represented: the neuron never fires.
            out.disabled[o] = 1;
            continue;
        }
        out.bias_pulses[o] = bias;
        out.preload[o] = budget - static_cast<std::uint64_t>(eff);
    }

    // Bitmask kernels over the scheduled order.
    const std::size_t in_dim = layer.inDim();
    const std::size_t words = (in_dim + 63) / 64;
    out.neg_masks.assign(n_out, std::vector<std::uint64_t>(words, 0));
    out.pos_masks.assign(n_out, std::vector<std::uint64_t>(words, 0));
    for (std::size_t o = 0; o < n_out; ++o) {
        const auto &w = layer.weights[o];
        for (std::size_t k = 0; k < in_dim; ++k) {
            const auto idx = static_cast<std::size_t>(
                out.schedule.order[k]);
            if (w[idx] < 0)
                out.neg_masks[o][k / 64] |= std::uint64_t{1}
                                            << (k % 64);
            else
                out.pos_masks[o][k / 64] |= std::uint64_t{1}
                                            << (k % 64);
        }
    }
    return out;
}

} // namespace

NpeRemap
planNpeRemap(int n, const std::vector<std::uint8_t> &failed_slots)
{
    sushi_assert(n >= 1);
    sushi_assert(failed_slots.size() == static_cast<std::size_t>(n));
    NpeRemap plan;
    plan.host.resize(static_cast<std::size_t>(n));
    std::vector<int> healthy;
    for (int s = 0; s < n; ++s) {
        if (failed_slots[static_cast<std::size_t>(s)])
            ++plan.failed;
        else
            healthy.push_back(s);
    }
    if (healthy.empty())
        sushi_fatal("all %d output NPE slots failed: the mesh cannot "
                    "run in degraded mode", n);
    int next = 0;
    for (int s = 0; s < n; ++s) {
        if (!failed_slots[static_cast<std::size_t>(s)]) {
            plan.host[static_cast<std::size_t>(s)] = s;
            continue;
        }
        // Round-robin the failed slot's neurons over healthy hosts.
        plan.host[static_cast<std::size_t>(s)] =
            healthy[static_cast<std::size_t>(next)];
        next = (next + 1) % static_cast<int>(healthy.size());
    }
    plan.extra_passes =
        (plan.failed + static_cast<int>(healthy.size()) - 1) /
        static_cast<int>(healthy.size());
    return plan;
}

CompiledNetwork
compileNetwork(const snn::BinarySnn &net, const ChipConfig &chip)
{
    sushi_assert(chip.n >= 1);
    sushi_assert(chip.sc_per_npe >= 1 && chip.sc_per_npe <= 30);
    CompiledNetwork out;
    out.chip = chip;
    out.net = &net;
    for (const auto &layer : net.layers())
        out.layers.push_back(compileLayer(layer, chip));
    return out;
}

} // namespace sushi::compiler
