#include "compiler/compile.hh"

#include "common/logging.hh"
#include "compiler/driver.hh"

namespace sushi::compiler {

long
CompiledNetwork::totalReloads() const
{
    long total = 0;
    for (const auto &layer : layers)
        total += layer.switch_reloads;
    return total;
}

long
CompiledNetwork::disabledNeurons() const
{
    long total = 0;
    for (const auto &layer : layers)
        for (auto d : layer.disabled)
            total += d;
    return total;
}

NpeRemap
planNpeRemap(int n, const std::vector<std::uint8_t> &failed_slots)
{
    sushi_assert(n >= 1);
    sushi_assert(failed_slots.size() == static_cast<std::size_t>(n));
    NpeRemap plan;
    plan.host.resize(static_cast<std::size_t>(n));
    std::vector<int> healthy;
    for (int s = 0; s < n; ++s) {
        if (failed_slots[static_cast<std::size_t>(s)])
            ++plan.failed;
        else
            healthy.push_back(s);
    }
    if (healthy.empty())
        sushi_fatal("all %d output NPE slots failed: the mesh cannot "
                    "run in degraded mode", n);
    int next = 0;
    for (int s = 0; s < n; ++s) {
        if (!failed_slots[static_cast<std::size_t>(s)]) {
            plan.host[static_cast<std::size_t>(s)] = s;
            continue;
        }
        // Round-robin the failed slot's neurons over healthy hosts.
        plan.host[static_cast<std::size_t>(s)] =
            healthy[static_cast<std::size_t>(next)];
        next = (next + 1) % static_cast<int>(healthy.size());
    }
    plan.extra_passes =
        (plan.failed + static_cast<int>(healthy.size()) - 1) /
        static_cast<int>(healthy.size());
    return plan;
}

CompiledNetwork
compileNetwork(const snn::BinarySnn &net, const ChipConfig &chip)
{
    return CompilerDriver(DriverOptions::legacy())
        .compileSingle(net, chip);
}

} // namespace sushi::compiler
