#include "compiler/driver.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace sushi::compiler {

void
validateChipConfig(const ChipConfig &chip)
{
    if (chip.n <= 0)
        throw CompileError(
            CompileError::Kind::BadChipConfig,
            "mesh width must be positive, got n = " +
                std::to_string(chip.n));
    if (chip.sc_per_npe <= 0 || chip.sc_per_npe > 30)
        throw CompileError(
            CompileError::Kind::BadChipConfig,
            "sc_per_npe must be in [1, 30], got " +
                std::to_string(chip.sc_per_npe));
    if (chip.bucketing.bucket_size <= 0)
        throw CompileError(
            CompileError::Kind::BadChipConfig,
            "bucket_size must be positive, got " +
                std::to_string(chip.bucketing.bucket_size));
}

CompilerDriver::CompilerDriver(DriverOptions options)
    : options_(std::move(options))
{}

ChipBudget
CompilerDriver::resolveBudget(const ChipConfig &chip) const
{
    ChipBudget b = options_.budget;
    if (b.jj_cap < 0 || b.area_cap_mm2 < 0.0)
        throw CompileError(
            CompileError::Kind::BadBudget,
            "budget caps must be positive (0 = use table defaults): "
            "jj_cap = " +
                std::to_string(b.jj_cap) + ", area_cap_mm2 = " +
                std::to_string(b.area_cap_mm2));
    if (b.jj_cap == 0 || b.area_cap_mm2 == 0.0) {
        const ChipBudget def =
            ChipBudget::tableDefaults(chip.n, chip.sc_per_npe);
        if (b.jj_cap == 0)
            b.jj_cap = def.jj_cap;
        if (b.area_cap_mm2 == 0.0)
            b.area_cap_mm2 = def.area_cap_mm2;
    }
    b.sc_per_npe = chip.sc_per_npe;
    return b;
}

namespace {

/** One evaluated schedule candidate from the schedule pass. */
struct ScheduleCandidate
{
    BucketingConfig cfg;
    LayerSchedule schedule;
    StateRangeReport range;
    bool bucketed = false;
};

ScheduleCandidate
evaluateCandidate(const snn::BinaryLayer &layer,
                  const BucketingConfig &cfg, bool bucketed)
{
    ScheduleCandidate c;
    c.cfg = cfg;
    c.bucketed = bucketed;
    c.schedule = scheduleLayer(layer, cfg);
    c.range = analyzeStateRange(layer, c.schedule, cfg);
    return c;
}

/** Place pass: preloads, bias pulses and bitmask kernels over the
 *  chosen schedule (unchanged from the historical compileLayer). */
void
placeLayer(const snn::BinaryLayer &layer, const ChipConfig &chip,
           CompiledLayer &out)
{
    const std::uint64_t budget = std::uint64_t{1} << chip.sc_per_npe;
    const std::size_t n_out = layer.outDim();
    out.preload.resize(n_out, 0);
    out.bias_pulses.resize(n_out, 0);
    out.disabled.resize(n_out, 0);
    for (std::size_t o = 0; o < n_out; ++o) {
        const int theta = layer.thresholds[o];
        // Thresholds <= 0 must still be able to fire: deliver bias
        // pulses so the effective threshold is at least 1.
        const int bias = std::max(0, 1 - theta);
        const int eff = theta + bias; // >= 1
        if (static_cast<std::uint64_t>(eff) >= budget) {
            // Cannot be represented: the neuron never fires.
            out.disabled[o] = 1;
            continue;
        }
        out.bias_pulses[o] = bias;
        out.preload[o] = budget - static_cast<std::uint64_t>(eff);
    }

    // Bitmask kernels over the scheduled order.
    const std::size_t in_dim = layer.inDim();
    const std::size_t words = (in_dim + 63) / 64;
    out.neg_masks.assign(n_out, std::vector<std::uint64_t>(words, 0));
    out.pos_masks.assign(n_out, std::vector<std::uint64_t>(words, 0));
    for (std::size_t o = 0; o < n_out; ++o) {
        const auto &w = layer.weights[o];
        for (std::size_t k = 0; k < in_dim; ++k) {
            const auto idx = static_cast<std::size_t>(
                out.schedule.order[k]);
            if (w[idx] < 0)
                out.neg_masks[o][k / 64] |= std::uint64_t{1}
                                            << (k % 64);
            else
                out.pos_masks[o][k / 64] |= std::uint64_t{1}
                                            << (k % 64);
        }
    }
}

} // namespace

CompiledLayer
CompilerDriver::compileLayerPasses(const snn::BinaryLayer &layer,
                                   const ChipConfig &chip) const
{
    CompiledLayer out;
    BucketingConfig bcfg = chip.bucketing;
    bcfg.state_bits = chip.sc_per_npe;
    bcfg.mesh_width = chip.n;

    // Slice pass.
    out.slices = sliceLayer(static_cast<int>(layer.inDim()),
                            static_cast<int>(layer.outDim()), chip.n);

    // Schedule pass: build the candidate list in the paper's
    // preference order — the exact unbucketed Sec. 5.1 traversal
    // first (inhibitory synapses first, so the counter crosses the
    // threshold at most once), alternating-polarity buckets as the
    // bounded-excursion fallback.
    std::vector<std::pair<BucketingConfig, bool>> cand_cfgs;
    if (bcfg.bucketing) {
        BucketingConfig single = bcfg;
        single.bucketing = false;
        cand_cfgs.emplace_back(single, false);
        cand_cfgs.emplace_back(bcfg, true);
    } else {
        cand_cfgs.emplace_back(bcfg, false);
    }

    if (!options_.score_schedules) {
        // Legacy selection: the first candidate whose state range
        // fits the budget wins; the last is the unconditional
        // fallback. Candidates are evaluated lazily so the compile
        // work matches the historical path exactly.
        ScheduleCandidate chosen;
        for (std::size_t i = 0; i < cand_cfgs.size(); ++i) {
            chosen = evaluateCandidate(layer, cand_cfgs[i].first,
                                       cand_cfgs[i].second);
            const bool fits = chosen.bucketed
                                  ? chosen.range.fits()
                                  : chosen.range.fitsUnbucketed();
            if (fits || i + 1 == cand_cfgs.size())
                break;
        }
        out.schedule = std::move(chosen.schedule);
        out.range = chosen.range;
        out.switch_reloads =
            countReloads(layer, out.schedule, chip.n);
    } else {
        // Cost-aware selection: among fitting candidates take the
        // cheapest reload count (Sec. 4.2.2); when nothing fits,
        // minimise the state overflow instead. Ties keep the
        // paper's preference order.
        std::vector<ScheduleCandidate> cands;
        std::vector<long> reloads;
        for (const auto &[cfg, bucketed] : cand_cfgs) {
            cands.push_back(evaluateCandidate(layer, cfg, bucketed));
            reloads.push_back(
                countReloads(layer, cands.back().schedule, chip.n));
        }
        std::size_t best = 0;
        bool best_fits = cands[0].range.fits();
        for (std::size_t i = 1; i < cands.size(); ++i) {
            const bool fits = cands[i].range.fits();
            const bool better =
                (fits && !best_fits) ||
                (fits == best_fits &&
                 (fits ? reloads[i] < reloads[best]
                       : cands[i].range.required_states <
                             cands[best].range.required_states));
            if (better) {
                best = i;
                best_fits = fits;
            }
        }
        out.schedule = std::move(cands[best].schedule);
        out.range = cands[best].range;
        out.switch_reloads = reloads[best];
    }

    // Place pass.
    placeLayer(layer, chip, out);
    return out;
}

CompiledNetwork
CompilerDriver::compileSingle(const snn::BinarySnn &net,
                              const ChipConfig &chip) const
{
    validateChipConfig(chip);
    const ChipBudget budget = resolveBudget(chip);
    const CostModel model(chip.n, chip.sc_per_npe);

    CompiledNetwork out;
    out.chip = chip;
    out.net = &net;
    std::vector<LayerCost> costs;
    costs.reserve(net.layers().size());
    for (const auto &layer : net.layers()) {
        out.layers.push_back(compileLayerPasses(layer, chip));
        costs.push_back(model.layerCost(layer));
    }

    // Budget pass: roll the resident cost up against the caps. The
    // report is always attached; only enforcing presets reject.
    out.budget = model.rollUp(costs, budget);
    for (const auto &layer : out.layers)
        out.budget.required_states =
            std::max(out.budget.required_states,
                     layer.range.required_states);
    out.disabled_count = out.disabledNeurons();
    out.plan_reloads = out.totalReloads();
    if (options_.enforce_budget && !out.budget.fits())
        throw CompileError(
            CompileError::Kind::BudgetOverflow,
            "model needs " + std::to_string(out.budget.totalJjs()) +
                " JJs on one chip, over the cap of " +
                std::to_string(budget.jj_cap) +
                " (use a multi-chip plan)");
    return out;
}

MultiChipPlan
CompilerDriver::compilePlan(const snn::BinarySnn &net,
                            const ChipConfig &chip) const
{
    validateChipConfig(chip);
    if (net.layers().empty())
        throw CompileError(CompileError::Kind::EmptyNetwork,
                           "cannot plan an empty network");
    const ChipBudget budget = resolveBudget(chip);
    const CostModel model(chip.n, chip.sc_per_npe);

    std::vector<LayerCost> costs;
    std::vector<int> wires;
    for (const auto &layer : net.layers()) {
        costs.push_back(model.layerCost(layer));
        wires.push_back(static_cast<int>(layer.outDim()));
    }

    MultiChipPlan plan;
    plan.chip = chip;
    plan.budget = budget;

    StageSplit split;
    const BudgetReport whole = model.rollUp(costs, budget);
    if (!options_.enforce_budget || whole.fits()) {
        split.stages.push_back(
            Block{0, static_cast<int>(net.layers().size())});
    } else if (!options_.allow_multichip) {
        throw CompileError(
            CompileError::Kind::BudgetOverflow,
            "model needs " + std::to_string(whole.totalJjs()) +
                " JJs on one chip, over the cap of " +
                std::to_string(budget.jj_cap) +
                " (multi-chip splitting disabled)");
    } else {
        split = splitLayersUnderBudget(costs, wires, model, budget,
                                       options_.max_chips);
    }

    for (const auto &range : split.stages) {
        auto stage = std::make_shared<ChipStage>();
        stage->first_layer = range.begin;
        stage->num_layers = range.end - range.begin;
        std::vector<snn::BinaryLayer> sub(
            net.layers().begin() + range.begin,
            net.layers().begin() + range.end);
        stage->subnet =
            snn::BinarySnn::fromLayers(std::move(sub), net.tSteps());
        stage->net = compileSingle(stage->subnet, chip);
        plan.stages.push_back(std::move(stage));
    }
    plan.cuts = split.cuts;
    return plan;
}

} // namespace sushi::compiler
