/**
 * @file
 * The pulse encoder: phase one of the Fig. 12 workflow.
 *
 * "Based on the constraints (Table 1) and the optimized synaptic
 * order (Sec. 5.1), we encode the channels and input times of weight
 * and input pulses" — this module performs that off-chip encoding,
 * turning a compiled single-layer network plus binary input frames
 * into a timed PulseProgram: weight-configuration streams, neuron
 * control streams in the Sec. 5.2 order (rst -> write -> set ->
 * input), and the input pulse streams, all spaced by the Table-1
 * safe interval.
 */

#ifndef SUSHI_COMPILER_PULSE_ENCODER_HH
#define SUSHI_COMPILER_PULSE_ENCODER_HH

#include "compiler/compile.hh"
#include "compiler/program.hh"

namespace sushi::compiler {

/** Encoder knobs. */
struct EncoderConfig
{
    /** Pulse spacing on shared paths; 0 selects the Table-1 safe
     *  spacing with margin. */
    Tick spacing = 0;
    /** Guard time between phases (weight config / control / input),
     *  in spacing units, covering in-flight propagation. */
    int phase_guard = 20;
};

/**
 * Encode a full inference run of a single-layer compiled network
 * (in_dim, out_dim <= mesh width — the gate-level scale) over binary
 * input frames, one time step per frame.
 */
PulseProgram encodeLayerProgram(const CompiledNetwork &cnet,
                                const std::vector<std::vector<
                                    std::uint8_t>> &frames,
                                const EncoderConfig &cfg = {});

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_PULSE_ENCODER_HH
