/**
 * @file
 * Hardware cost model: JJ count, area and switching energy of a
 * compiled model, derived from the `sfq/cell_params` library table.
 *
 * Three cost sources roll up per layer and per chip:
 *
 *  - *Fabric*: the mesh itself (crosspoints, NPEs, wiring) — taken
 *    from `fabric::designPoint`, which builds the actual gate-level
 *    netlist, so the cost model can never drift from the simulated
 *    design.
 *  - *Weight bank*: one resident NDRO storage loop per synapse sign
 *    bit, packed at `sfq::storageArrayDensity()` relative to logic.
 *  - *Preload bank*: sc_per_npe DFF bits per output neuron holding
 *    the counter preload word.
 *
 * Energy is derived, not restated: the per-synaptic-op switching
 * energy is the `sfq::synapseEventJjs()` cell-path total times the
 * per-JJ flip energy, which tests assert equals the chip model's
 * `dynamicEnergyJ(1)`.
 */

#ifndef SUSHI_COMPILER_COST_MODEL_HH
#define SUSHI_COMPILER_COST_MODEL_HH

#include <cstddef>
#include <vector>

#include "compiler/budget.hh"
#include "snn/binarize.hh"

namespace sushi::compiler {

struct ChipConfig;

/** JJ + area cost of one resident storage bit. */
struct BitCost
{
    int jjs = 0;
    double area_mm2 = 0.0;
};

/** Cost of a synapse sign bit in the weight bank (NDRO loop). */
BitCost synapseBitCost();

/** Cost of one preload-word bit (DFF) in the neuron bank. */
BitCost preloadBitCost();

/** Mesh fabric cost at width @p n (cached per n; thread-safe). */
struct FabricCost
{
    long jjs = 0;
    double area_mm2 = 0.0;
};
FabricCost fabricCost(int n);

/** Resident cost of one compiled layer. */
struct LayerCost
{
    long synapses = 0;
    long weight_jjs = 0;
    long preload_jjs = 0;
    double weight_area_mm2 = 0.0;
    double preload_area_mm2 = 0.0;

    long totalJjs() const { return weight_jjs + preload_jjs; }
    double totalAreaMm2() const
    {
        return weight_area_mm2 + preload_area_mm2;
    }
};

/** Per-chip cost model bound to one chip geometry. */
class CostModel
{
  public:
    explicit CostModel(int n, int sc_per_npe);

    /** Resident cost of a dense in_dim x out_dim binary layer. */
    LayerCost layerCost(std::size_t in_dim, std::size_t out_dim) const;
    LayerCost layerCost(const snn::BinaryLayer &layer) const;

    long fabricJjs() const { return fabric_.jjs; }
    double fabricAreaMm2() const { return fabric_.area_mm2; }

    /** Energy charged per synaptic event, joules (cell-path total). */
    double switchEnergyPerSynOpJ() const;

    /**
     * Roll layers [begin, end) up against @p budget. The caller fills
     * `required_states` afterwards (it depends on the schedule, not
     * on the cost model).
     */
    BudgetReport rollUp(const std::vector<LayerCost> &costs,
                        std::size_t begin, std::size_t end,
                        const ChipBudget &budget) const;
    BudgetReport rollUp(const std::vector<LayerCost> &costs,
                        const ChipBudget &budget) const;

  private:
    int n_;
    int sc_per_npe_;
    FabricCost fabric_;
};

} // namespace sushi::compiler

#endif // SUSHI_COMPILER_COST_MODEL_HH
