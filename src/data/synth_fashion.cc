#include "data/synth_fashion.hh"

#include "common/logging.hh"

namespace sushi::data {

namespace {

/**
 * Torso-with-sleeves silhouette shared by the shirt-like classes.
 * @param sleeve how far the sleeves reach (x offset from torso)
 * @param length torso bottom y
 * @param flare  widening of the hem (dress-like when large)
 */
void
drawTop(Canvas &c, Rng &rng, float sleeve, float length, float flare,
        float intensity)
{
    const float cx = 14.0f;
    const float shoulder = 7.5f + static_cast<float>(
                                      rng.uniform(-0.5, 0.5));
    const float waist = 5.0f + flare;
    // Torso (trapezoid).
    c.fillConvex({{cx - shoulder * 0.7f, 8},
                  {cx + shoulder * 0.7f, 8},
                  {cx + waist, length},
                  {cx - waist, length}},
                 intensity);
    // Sleeves.
    if (sleeve > 0) {
        c.fillConvex({{cx - shoulder * 0.7f, 8},
                      {cx - shoulder * 0.7f - sleeve, 11.5f},
                      {cx - shoulder * 0.7f - sleeve + 1.5f, 14},
                      {cx - shoulder * 0.55f, 11}},
                     intensity);
        c.fillConvex({{cx + shoulder * 0.7f, 8},
                      {cx + shoulder * 0.7f + sleeve, 11.5f},
                      {cx + shoulder * 0.7f + sleeve - 1.5f, 14},
                      {cx + shoulder * 0.55f, 11}},
                     intensity);
    }
}

void
drawShoe(Canvas &c, Rng &rng, float shaft_height, float intensity)
{
    const float jig = static_cast<float>(rng.uniform(-0.6, 0.6));
    // Sole + toe wedge.
    c.fillConvex({{5, 19 + jig},
                  {23, 17.5f + jig},
                  {23.5f, 21 + jig},
                  {5, 21.5f + jig}},
                 intensity);
    // Shaft (tall for boots, small for sneakers, none for sandals).
    if (shaft_height > 0) {
        c.fillConvex({{5.5f, 19 + jig},
                      {5.5f, 19 - shaft_height + jig},
                      {11, 19 - shaft_height + jig},
                      {12.5f, 19 + jig}},
                     intensity);
    }
}

void
drawClass(Canvas &c, Rng &rng, int label)
{
    const float inten =
        0.75f + static_cast<float>(rng.uniform(0.0, 0.25));
    switch (label) {
      case 0: // t-shirt: short sleeves, mid length
        drawTop(c, rng, 3.5f, 19, 0.4f, inten);
        break;
      case 1: // trouser: two legs
        c.fillConvex({{10, 6}, {18, 6}, {18, 9}, {10, 9}}, inten);
        c.fillConvex({{10, 9}, {13, 9}, {12.5f, 23}, {9.5f, 23}},
                     inten);
        c.fillConvex({{15, 9}, {18, 9}, {18.5f, 23}, {15.5f, 23}},
                     inten);
        break;
      case 2: // pullover: long sleeves, mid length
        drawTop(c, rng, 5.5f, 19, 0.2f, inten);
        break;
      case 3: // dress: sleeveless, long, flared
        drawTop(c, rng, 0.0f, 24, 3.5f, inten);
        break;
      case 4: // coat: long sleeves, long body
        drawTop(c, rng, 5.5f, 23, 1.2f, inten);
        break;
      case 5: // sandal: sole only + straps
        drawShoe(c, rng, 0.0f, inten);
        c.stroke({8, 15.5f}, {14, 19}, 1.2f, inten);
        c.stroke({14, 15.5f}, {9, 19}, 1.2f, inten);
        break;
      case 6: // shirt: short-ish sleeves, slightly long
        drawTop(c, rng, 4.2f, 21, 0.6f, inten);
        break;
      case 7: // sneaker: low shaft
        drawShoe(c, rng, 3.0f, inten);
        break;
      case 8: // bag: box + handle
        c.fillConvex({{7, 12}, {21, 12}, {22, 22}, {6, 22}}, inten);
        c.stroke({11, 12}, {12.5f, 7}, 1.4f, inten);
        c.stroke({12.5f, 7}, {16, 7}, 1.4f, inten);
        c.stroke({16, 7}, {17.5f, 12}, 1.4f, inten);
        break;
      case 9: // ankle boot: tall shaft
        drawShoe(c, rng, 7.0f, inten);
        break;
      default:
        sushi_panic("bad fashion label %d", label);
    }
}

const char *kNames[] = {
    "t-shirt", "trouser", "pullover", "dress",      "coat",
    "sandal",  "shirt",   "sneaker",  "bag",        "ankle-boot",
};

} // namespace

const char *
fashionClassName(int label)
{
    sushi_assert(label >= 0 && label < kNumClasses);
    return kNames[label];
}

Dataset
synthFashion(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds;
    ds.images = snn::Tensor(n, static_cast<std::size_t>(kImageDim));
    ds.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int label = static_cast<int>(rng.below(10));
        Canvas c;
        drawClass(c, rng, label);
        c.jitter(rng, /*rotate=*/0.16f, /*translate=*/1.8f,
                 /*scale=*/0.16f);
        c.addNoise(rng, 0.09f);
        std::copy(c.pixels().begin(), c.pixels().end(),
                  ds.images.row(i));
        ds.labels[i] = label;
    }
    return ds;
}

} // namespace sushi::data
