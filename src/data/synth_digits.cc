#include "data/synth_digits.hh"

#include <cmath>

#include "common/logging.hh"

namespace sushi::data {

namespace {

void
strokePolyline(Canvas &c, const std::vector<Point> &pts,
               float thickness)
{
    for (std::size_t i = 0; i + 1 < pts.size(); ++i)
        c.stroke(pts[i], pts[i + 1], thickness);
}

void
strokeEllipse(Canvas &c, float cx, float cy, float rx, float ry,
              float thickness)
{
    std::vector<Point> pts;
    const int segs = 16;
    for (int i = 0; i <= segs; ++i) {
        const float a = 6.2831853f * static_cast<float>(i) /
                        static_cast<float>(segs);
        pts.push_back(Point{cx + rx * std::cos(a),
                            cy + ry * std::sin(a)});
    }
    strokePolyline(c, pts, thickness);
}

/** Stroke the glyph of one digit onto the canvas. */
void
drawDigit(Canvas &c, int digit, float th)
{
    switch (digit) {
      case 0:
        strokeEllipse(c, 14, 14, 5.5f, 8, th);
        break;
      case 1:
        strokePolyline(c, {{11, 9}, {14.5f, 5.5f}, {14.5f, 22}}, th);
        break;
      case 2:
        strokePolyline(c,
                       {{9, 10},
                        {10, 7},
                        {14, 5.5f},
                        {18, 7},
                        {19, 10},
                        {9, 22},
                        {20, 22}},
                       th);
        break;
      case 3:
        strokePolyline(c,
                       {{9, 6},
                        {18, 6},
                        {13, 13},
                        {18, 15},
                        {18.5f, 19},
                        {15, 22},
                        {9, 21}},
                       th);
        break;
      case 4:
        strokePolyline(c, {{16, 5.5f}, {8, 16}, {20, 16}}, th);
        c.stroke({16, 5.5f}, {16, 22.5f}, th);
        break;
      case 5:
        strokePolyline(c,
                       {{19, 6},
                        {9.5f, 6},
                        {9.5f, 13},
                        {15, 12.5f},
                        {19, 16},
                        {16, 21.5f},
                        {9, 21}},
                       th);
        break;
      case 6:
        strokePolyline(c, {{17, 5.5f}, {12, 11}, {9.5f, 16}}, th);
        strokeEllipse(c, 14, 17.5f, 4.5f, 5, th);
        break;
      case 7:
        strokePolyline(c, {{8.5f, 6}, {20, 6}, {12.5f, 22.5f}}, th);
        break;
      case 8:
        strokeEllipse(c, 14, 9.5f, 4.2f, 4, th);
        strokeEllipse(c, 14, 18, 5, 4.5f, th);
        break;
      case 9:
        strokeEllipse(c, 13.5f, 10.5f, 4.5f, 4.5f, th);
        strokePolyline(c, {{18, 11.5f}, {17, 22.5f}}, th);
        break;
      default:
        sushi_panic("bad digit %d", digit);
    }
}

} // namespace

std::vector<float>
digitGlyph(int digit)
{
    Canvas c;
    drawDigit(c, digit, 2.0f);
    return c.pixels();
}

Dataset
synthDigits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset ds;
    ds.images = snn::Tensor(n, static_cast<std::size_t>(kImageDim));
    ds.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int digit = static_cast<int>(rng.below(10));
        Canvas c;
        const float th =
            2.0f + static_cast<float>(rng.uniform(-0.5, 0.7));
        drawDigit(c, digit, th);
        c.jitter(rng, /*rotate=*/0.22f, /*translate=*/2.2f,
                 /*scale=*/0.14f);
        c.addNoise(rng, 0.06f);
        std::copy(c.pixels().begin(), c.pixels().end(),
                  ds.images.row(i));
        ds.labels[i] = digit;
    }
    return ds;
}

} // namespace sushi::data
