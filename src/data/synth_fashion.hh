/**
 * @file
 * Procedural clothing-silhouette dataset (the Fashion-MNIST
 * stand-in).
 *
 * Ten filled-silhouette classes matching Fashion-MNIST's label set
 * (t-shirt, trouser, pullover, dress, coat, sandal, shirt, sneaker,
 * bag, ankle boot). Several classes deliberately overlap in shape
 * (t-shirt / shirt / pullover / coat; sneaker / ankle boot), so the
 * task is measurably harder than the digit task — preserving the
 * paper's MNIST-vs-Fashion-MNIST difficulty ordering in Table 3.
 */

#ifndef SUSHI_DATA_SYNTH_FASHION_HH
#define SUSHI_DATA_SYNTH_FASHION_HH

#include <cstdint>

#include "data/dataset.hh"

namespace sushi::data {

/** Generate @p n labelled clothing images. */
Dataset synthFashion(std::size_t n, std::uint64_t seed);

/** Class names matching Fashion-MNIST's labels. */
const char *fashionClassName(int label);

} // namespace sushi::data

#endif // SUSHI_DATA_SYNTH_FASHION_HH
