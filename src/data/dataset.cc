#include "data/dataset.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sushi::data {

Canvas::Canvas() : pix_(static_cast<std::size_t>(kImageDim), 0.0f) {}

namespace {

float &
pixelAt(std::vector<float> &pix, int x, int y)
{
    return pix[static_cast<std::size_t>(y) * kImageSide +
               static_cast<std::size_t>(x)];
}

void
splat(std::vector<float> &pix, float cx, float cy, float radius,
      float intensity)
{
    const int x0 = std::max(0, static_cast<int>(cx - radius - 1));
    const int x1 =
        std::min(kImageSide - 1, static_cast<int>(cx + radius + 1));
    const int y0 = std::max(0, static_cast<int>(cy - radius - 1));
    const int y1 =
        std::min(kImageSide - 1, static_cast<int>(cy + radius + 1));
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            const float dx = static_cast<float>(x) - cx;
            const float dy = static_cast<float>(y) - cy;
            const float d = std::sqrt(dx * dx + dy * dy);
            // Soft brush: full intensity inside, linear falloff at
            // the rim for a crude anti-aliasing.
            const float v =
                intensity *
                std::clamp(radius + 0.5f - d, 0.0f, 1.0f);
            float &p = pixelAt(pix, x, y);
            p = std::max(p, v);
        }
    }
}

} // namespace

void
Canvas::stroke(Point a, Point b, float thickness, float intensity)
{
    const float dx = b.x - a.x;
    const float dy = b.y - a.y;
    const float len = std::sqrt(dx * dx + dy * dy);
    const int steps = std::max(1, static_cast<int>(len * 2.0f));
    for (int s = 0; s <= steps; ++s) {
        const float u = static_cast<float>(s) /
                        static_cast<float>(steps);
        splat(pix_, a.x + u * dx, a.y + u * dy, thickness * 0.5f,
              intensity);
    }
}

void
Canvas::fillConvex(const std::vector<Point> &poly, float intensity)
{
    sushi_assert(poly.size() >= 3);
    for (int y = 0; y < kImageSide; ++y) {
        for (int x = 0; x < kImageSide; ++x) {
            // Point-in-convex-polygon by consistent cross-product
            // sign.
            bool inside = true;
            bool has_pos = false, has_neg = false;
            for (std::size_t i = 0; i < poly.size(); ++i) {
                const Point &p0 = poly[i];
                const Point &p1 = poly[(i + 1) % poly.size()];
                const float cross =
                    (p1.x - p0.x) * (static_cast<float>(y) - p0.y) -
                    (p1.y - p0.y) * (static_cast<float>(x) - p0.x);
                has_pos |= cross > 0;
                has_neg |= cross < 0;
                if (has_pos && has_neg) {
                    inside = false;
                    break;
                }
            }
            if (inside) {
                float &p = pixelAt(pix_, x, y);
                p = std::max(p, intensity);
            }
        }
    }
}

void
Canvas::addNoise(Rng &rng, float stddev)
{
    for (auto &p : pix_) {
        p += static_cast<float>(rng.gaussian(0.0, stddev));
        p = std::clamp(p, 0.0f, 1.0f);
    }
}

void
Canvas::jitter(Rng &rng, float max_rotate_rad, float max_translate,
               float max_scale_delta)
{
    const float angle = static_cast<float>(
        rng.uniform(-max_rotate_rad, max_rotate_rad));
    const float tx = static_cast<float>(
        rng.uniform(-max_translate, max_translate));
    const float ty = static_cast<float>(
        rng.uniform(-max_translate, max_translate));
    const float scale = 1.0f + static_cast<float>(rng.uniform(
                                   -max_scale_delta, max_scale_delta));
    const float c = std::cos(angle), s = std::sin(angle);
    const float mid = kImageSide / 2.0f;

    std::vector<float> out(pix_.size(), 0.0f);
    for (int y = 0; y < kImageSide; ++y) {
        for (int x = 0; x < kImageSide; ++x) {
            // Inverse-map the destination pixel into the source.
            const float rx = (static_cast<float>(x) - mid - tx) /
                             scale;
            const float ry = (static_cast<float>(y) - mid - ty) /
                             scale;
            const float sx = c * rx + s * ry + mid;
            const float sy = -s * rx + c * ry + mid;
            const int ix = static_cast<int>(std::lround(sx));
            const int iy = static_cast<int>(std::lround(sy));
            if (ix >= 0 && ix < kImageSide && iy >= 0 &&
                iy < kImageSide) {
                out[static_cast<std::size_t>(y) * kImageSide +
                    static_cast<std::size_t>(x)] =
                    pixelAt(pix_, ix, iy);
            }
        }
    }
    pix_ = std::move(out);
}

std::pair<Dataset, Dataset>
split(const Dataset &all, std::size_t head)
{
    sushi_assert(head <= all.size());
    Dataset a, b;
    const std::size_t dim = all.images.cols();
    a.images = snn::Tensor(head, dim);
    a.labels.assign(all.labels.begin(),
                    all.labels.begin() + static_cast<long>(head));
    b.images = snn::Tensor(all.size() - head, dim);
    b.labels.assign(all.labels.begin() + static_cast<long>(head),
                    all.labels.end());
    for (std::size_t i = 0; i < head; ++i)
        std::copy_n(all.images.row(i), dim, a.images.row(i));
    for (std::size_t i = head; i < all.size(); ++i)
        std::copy_n(all.images.row(i), dim,
                    b.images.row(i - head));
    return {std::move(a), std::move(b)};
}

} // namespace sushi::data
