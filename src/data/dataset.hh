/**
 * @file
 * Dataset container and the synthetic image generators' shared
 * rasteriser.
 *
 * The paper evaluates on MNIST and Fashion-MNIST. Those datasets are
 * not redistributable inside this repository, so two procedural
 * stand-ins with the same tensor shapes (28x28 grayscale, 10 classes)
 * are generated deterministically: stroke-rendered digits
 * (synthDigits) and clothing silhouettes (synthFashion). The digits
 * task is easy (like MNIST); the fashion task has heavier inter-class
 * overlap (like Fashion-MNIST), so the relative orderings the paper's
 * Table 3 reports are preserved.
 */

#ifndef SUSHI_DATA_DATASET_HH
#define SUSHI_DATA_DATASET_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "snn/tensor.hh"

namespace sushi::data {

/** Side length of every generated image. */
constexpr int kImageSide = 28;

/** Pixels per image. */
constexpr int kImageDim = kImageSide * kImageSide;

/** Number of classes in both synthetic tasks. */
constexpr int kNumClasses = 10;

/** A labelled image set. */
struct Dataset
{
    snn::Tensor images;      ///< [N x 784], intensities in [0, 1]
    std::vector<int> labels; ///< N class ids

    std::size_t size() const { return labels.size(); }
};

/** A 2-D point in image coordinates. */
struct Point
{
    float x;
    float y;
};

/**
 * Greyscale canvas helper used by the generators: draws anti-aliased
 * thick line segments and filled convex polygons, then perturbs.
 */
class Canvas
{
  public:
    Canvas();

    /** Draw a thick segment from a to b with the given intensity. */
    void stroke(Point a, Point b, float thickness,
                float intensity = 1.0f);

    /** Fill a convex polygon. */
    void fillConvex(const std::vector<Point> &poly,
                    float intensity = 1.0f);

    /** Add Gaussian pixel noise, clamped to [0, 1]. */
    void addNoise(Rng &rng, float stddev);

    /** Random small rotation + translation + scale about centre. */
    void jitter(Rng &rng, float max_rotate_rad, float max_translate,
                float max_scale_delta);

    /** Flattened pixels, row-major, [0, 1]. */
    const std::vector<float> &pixels() const { return pix_; }

  private:
    std::vector<float> pix_;
};

/** Split a dataset into the first @p head rows and the rest. */
std::pair<Dataset, Dataset> split(const Dataset &all, std::size_t head);

} // namespace sushi::data

#endif // SUSHI_DATA_DATASET_HH
