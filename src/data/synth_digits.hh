/**
 * @file
 * Procedural handwritten-digit dataset (the MNIST stand-in).
 *
 * Each class is a polyline glyph of its digit, stroke-rendered with
 * per-sample jitter (rotation, translation, scale, stroke thickness)
 * and pixel noise. Deterministic in the seed.
 */

#ifndef SUSHI_DATA_SYNTH_DIGITS_HH
#define SUSHI_DATA_SYNTH_DIGITS_HH

#include <cstdint>

#include "data/dataset.hh"

namespace sushi::data {

/**
 * Generate @p n labelled digit images (labels cycle 0..9).
 * @param seed stream seed; equal seeds give identical datasets
 */
Dataset synthDigits(std::size_t n, std::uint64_t seed);

/** Render one clean digit glyph (no jitter/noise), for tests. */
std::vector<float> digitGlyph(int digit);

} // namespace sushi::data

#endif // SUSHI_DATA_SYNTH_DIGITS_HH
