#include "perf/fault_campaign.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

namespace sushi::perf {

namespace {

/** splitmix64 step: derives independent trial seeds from the
 *  campaign seed without an Rng object (thread-free determinism). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
trialSeed(std::uint64_t campaign_seed, std::size_t kind_i,
          std::size_t rate_i, int seed_i)
{
    std::uint64_t s = mix64(campaign_seed);
    s = mix64(s ^ (static_cast<std::uint64_t>(kind_i) << 48));
    s = mix64(s ^ (static_cast<std::uint64_t>(rate_i) << 24));
    s = mix64(s ^ static_cast<std::uint64_t>(seed_i));
    return s | 1; // never seed with 0
}

struct Trial
{
    std::size_t kind_i;
    std::size_t rate_i;
    int seed_i;
};

struct TrialResult
{
    bool exact = false;
    double count_err = 0.0;
    double violations = 0.0;
    double dropped = 0.0;
    double inserted = 0.0;
    double recovered = 0.0;
    double energy_j = 0.0;
};

/**
 * A replica of the campaign workload: a Simulator sharing the
 * master's immutable compiled structure (no re-lowering per trial or
 * per worker), with the cells the campaign drives and reads resolved
 * to dense ids once. Between trials the replica rewinds with the
 * snapshot-fast Simulator::reset() instead of being rebuilt, so a
 * trial's cost is the simulation itself.
 */
struct Rig
{
    sfq::Simulator sim;
    std::int32_t in_cell;
    std::int32_t set1_cell;
    std::int32_t out_cell;
    std::vector<std::int32_t> sc_state_cells;

    Rig(std::shared_ptr<const sfq::NetStructure> structure,
        int num_sc)
        : sim(std::move(structure))
    {
        // Graceful degradation: marginal arrivals are attributed to
        // the cell and the offending pulse dropped, never an abort.
        sim.setViolationPolicy(sfq::ViolationPolicy::Recover);
        const sfq::CompiledNetlist &core = sim.core();
        in_cell = core.cellId("npe.in");
        set1_cell = core.cellId("npe.set1");
        out_cell = core.cellId("npe.out");
        sushi_assert(in_cell >= 0 && set1_cell >= 0 && out_cell >= 0);
        for (int i = 0; i < num_sc; ++i) {
            // Either TFF of an SC holds the stored bit; use the left.
            const std::int32_t id = core.cellId(
                "npe.sc" + std::to_string(i) + ".tffl");
            sushi_assert(id >= 0);
            sc_state_cells.push_back(id);
        }
    }

    /** Counter value decoded from the SC states (LSB = SC0). */
    std::uint64_t
    value() const
    {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < sc_state_cells.size(); ++i)
            if (sim.core().stateBit(sc_state_cells[i]))
                v |= std::uint64_t{1} << i;
        return v;
    }
};

TrialResult
runTrial(const FaultCampaignConfig &cfg, const Trial &t, Rig &rig)
{
    const sfq::FaultKind kind = cfg.kinds[t.kind_i];
    const double rate = cfg.rates[t.rate_i];

    sfq::Simulator &sim = rig.sim;
    sim.reset(); // snapshot restore: state, traces, counters, queue
    sim.faults().clearFaults();
    sim.faults().reseed(
        trialSeed(cfg.campaign_seed, t.kind_i, t.rate_i, t.seed_i));
    if (rate > 0.0) {
        sfq::FaultSpec spec;
        spec.kind = kind;
        if (kind == sfq::FaultKind::TimingJitter)
            spec.jitter_sigma = rate * cfg.jitter_scale_ticks;
        else
            spec.rate = rate;
        sim.faults().addFault(spec);
    }

    // Workload: pulses through a gate-level NPE counter, checked
    // pulse-exactly against the ideal behavioural counter — the same
    // equivalence the paper's waveform verification establishes.
    const Tick gap = sfq::safePulseSpacing();
    sim.schedulePulse(gap, rig.set1_cell, 0);
    for (int i = 0; i < cfg.pulses; ++i)
        sim.schedulePulse((i + 2) * gap, rig.in_cell, 0);
    sim.run();

    npe::Npe ideal(cfg.num_sc);
    ideal.setPolarity(npe::Polarity::Excitatory);
    const std::uint64_t ideal_spikes =
        ideal.addPulses(static_cast<std::uint64_t>(cfg.pulses));

    TrialResult r;
    const std::uint64_t got = rig.value();
    const std::uint64_t want = ideal.value();
    const std::uint64_t spikes =
        sim.core().trace(rig.out_cell).size();
    r.exact = got == want && spikes == ideal_spikes;
    r.count_err = std::abs(static_cast<double>(got) -
                           static_cast<double>(want));
    r.violations = static_cast<double>(sim.violations());
    r.dropped = static_cast<double>(sim.faults().counters().dropped);
    r.inserted =
        static_cast<double>(sim.faults().counters().inserted);
    r.recovered = static_cast<double>(sim.recoveredPulses());
    r.energy_j = sim.switchEnergy();
    return r;
}

} // namespace

FaultCampaignResult
runFaultCampaign(const FaultCampaignConfig &cfg)
{
    sushi_assert(cfg.seeds >= 1);
    sushi_assert(!cfg.kinds.empty() && !cfg.rates.empty());
    sushi_assert(cfg.num_sc >= 1 && cfg.pulses >= 1);

    std::vector<Trial> trials;
    trials.reserve(cfg.kinds.size() * cfg.rates.size() *
                   static_cast<std::size_t>(cfg.seeds));
    for (std::size_t k = 0; k < cfg.kinds.size(); ++k)
        for (std::size_t r = 0; r < cfg.rates.size(); ++r)
            for (int s = 0; s < cfg.seeds; ++s)
                trials.push_back(Trial{k, r, s});

    // Lower the workload circuit once and share its immutable
    // structure; each worker chunk builds a replica rig (mutable
    // state only) and snapshot-resets it between trials.
    sfq::Simulator master;
    sfq::Netlist net(master);
    npe::NpeGate gate(net, "npe", cfg.num_sc);
    std::shared_ptr<const sfq::NetStructure> structure =
        master.core().shareStructure();

    // Fan out across threads; every chunk owns its replica, results
    // land at their own index, and each trial is fully reset before
    // it runs, so the aggregation below is independent of both the
    // thread count and the trial-to-chunk assignment.
    std::vector<TrialResult> results(trials.size());
    ParallelOptions opts;
    opts.grain = 8; // one replica rig per chunk, amortized
    parallelFor(
        trials.size(),
        [&](std::size_t begin, std::size_t end) {
            Rig rig(structure, cfg.num_sc);
            for (std::size_t i = begin; i < end; ++i)
                results[i] = runTrial(cfg, trials[i], rig);
        },
        opts);

    FaultCampaignResult out;
    out.cfg = cfg;
    for (std::size_t k = 0; k < cfg.kinds.size(); ++k) {
        for (std::size_t r = 0; r < cfg.rates.size(); ++r) {
            FaultCampaignPoint p{};
            p.kind = cfg.kinds[k];
            p.rate = cfg.rates[r];
            p.trials = cfg.seeds;
            const std::size_t base =
                (k * cfg.rates.size() + r) *
                static_cast<std::size_t>(cfg.seeds);
            int exact = 0;
            for (int s = 0; s < cfg.seeds; ++s) {
                const TrialResult &t =
                    results[base + static_cast<std::size_t>(s)];
                exact += t.exact ? 1 : 0;
                p.mean_count_err += t.count_err;
                p.mean_violations += t.violations;
                p.mean_dropped += t.dropped;
                p.mean_inserted += t.inserted;
                p.mean_recovered += t.recovered;
                p.mean_energy_j += t.energy_j;
            }
            const double n = cfg.seeds;
            p.accuracy = exact / n;
            p.mean_count_err /= n;
            p.mean_violations /= n;
            p.mean_dropped /= n;
            p.mean_inserted /= n;
            p.mean_recovered /= n;
            p.mean_energy_j /= n;
            out.points.push_back(p);
        }
    }
    return out;
}

bool
accuracyMonotone(const FaultCampaignResult &result)
{
    const std::size_t n_rates = result.cfg.rates.size();
    for (std::size_t k = 0; k < result.cfg.kinds.size(); ++k) {
        for (std::size_t r = 1; r < n_rates; ++r) {
            const auto &prev = result.points[k * n_rates + r - 1];
            const auto &cur = result.points[k * n_rates + r];
            if (cur.accuracy > prev.accuracy + 1e-12)
                return false;
        }
    }
    return true;
}

std::string
campaignToJson(const FaultCampaignResult &result)
{
    JsonWriter w;
    w.field("workload", "npe_counter");
    w.field("campaign_seed", result.cfg.campaign_seed);
    w.field("seeds", result.cfg.seeds);
    w.field("num_sc", result.cfg.num_sc);
    w.field("pulses", result.cfg.pulses);
    w.field("jitter_scale_ticks", result.cfg.jitter_scale_ticks);
    w.beginArray("points");
    for (const FaultCampaignPoint &p : result.points) {
        w.beginObject();
        w.field("kind", sfq::faultKindName(p.kind));
        w.field("rate", p.rate);
        w.field("trials", p.trials);
        w.field("accuracy", p.accuracy);
        w.field("mean_count_err", p.mean_count_err);
        w.field("mean_violations", p.mean_violations);
        w.field("mean_dropped", p.mean_dropped);
        w.field("mean_inserted", p.mean_inserted);
        w.field("mean_recovered", p.mean_recovered);
        w.field("mean_energy_j", p.mean_energy_j);
        w.endObject();
    }
    w.endArray();
    return w.finish();
}

bool
writeCampaignJson(const FaultCampaignResult &result,
                  const std::string &path)
{
    return JsonWriter::writeFile(path, campaignToJson(result));
}

} // namespace sushi::perf
