#include "perf/fault_campaign.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

namespace sushi::perf {

namespace {

/** splitmix64 step: derives independent trial seeds from the
 *  campaign seed without an Rng object (thread-free determinism). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
trialSeed(std::uint64_t campaign_seed, std::size_t kind_i,
          std::size_t rate_i, int seed_i)
{
    std::uint64_t s = mix64(campaign_seed);
    s = mix64(s ^ (static_cast<std::uint64_t>(kind_i) << 48));
    s = mix64(s ^ (static_cast<std::uint64_t>(rate_i) << 24));
    s = mix64(s ^ static_cast<std::uint64_t>(seed_i));
    return s | 1; // never seed with 0
}

struct Trial
{
    std::size_t kind_i;
    std::size_t rate_i;
    int seed_i;
};

struct TrialResult
{
    bool exact = false;
    double count_err = 0.0;
    double violations = 0.0;
    double dropped = 0.0;
    double inserted = 0.0;
    double recovered = 0.0;
    double energy_j = 0.0;
};

TrialResult
runTrial(const FaultCampaignConfig &cfg, const Trial &t)
{
    const sfq::FaultKind kind = cfg.kinds[t.kind_i];
    const double rate = cfg.rates[t.rate_i];

    sfq::Simulator sim;
    // Graceful degradation: marginal arrivals are attributed to the
    // cell and the offending pulse dropped, never an abort.
    sim.setViolationPolicy(sfq::ViolationPolicy::Recover);
    sim.faults().reseed(
        trialSeed(cfg.campaign_seed, t.kind_i, t.rate_i, t.seed_i));
    if (rate > 0.0) {
        sfq::FaultSpec spec;
        spec.kind = kind;
        if (kind == sfq::FaultKind::TimingJitter)
            spec.jitter_sigma = rate * cfg.jitter_scale_ticks;
        else
            spec.rate = rate;
        sim.faults().addFault(spec);
    }

    // Workload: pulses through a gate-level NPE counter, checked
    // pulse-exactly against the ideal behavioural counter — the same
    // equivalence the paper's waveform verification establishes.
    sfq::Netlist net(sim);
    npe::NpeGate gate(net, "npe", cfg.num_sc);
    const Tick gap = sfq::safePulseSpacing();
    gate.injectSet1(gap);
    for (int i = 0; i < cfg.pulses; ++i)
        gate.injectIn((i + 2) * gap);
    sim.run();

    npe::Npe ideal(cfg.num_sc);
    ideal.setPolarity(npe::Polarity::Excitatory);
    const std::uint64_t ideal_spikes =
        ideal.addPulses(static_cast<std::uint64_t>(cfg.pulses));

    TrialResult r;
    const std::uint64_t got = gate.value();
    const std::uint64_t want = ideal.value();
    r.exact = got == want && gate.outSink().count() == ideal_spikes;
    r.count_err = std::abs(static_cast<double>(got) -
                           static_cast<double>(want));
    r.violations = static_cast<double>(sim.violations());
    r.dropped = static_cast<double>(sim.faults().counters().dropped);
    r.inserted =
        static_cast<double>(sim.faults().counters().inserted);
    r.recovered = static_cast<double>(sim.recoveredPulses());
    r.energy_j = sim.switchEnergy();
    return r;
}

} // namespace

FaultCampaignResult
runFaultCampaign(const FaultCampaignConfig &cfg)
{
    sushi_assert(cfg.seeds >= 1);
    sushi_assert(!cfg.kinds.empty() && !cfg.rates.empty());
    sushi_assert(cfg.num_sc >= 1 && cfg.pulses >= 1);

    std::vector<Trial> trials;
    trials.reserve(cfg.kinds.size() * cfg.rates.size() *
                   static_cast<std::size_t>(cfg.seeds));
    for (std::size_t k = 0; k < cfg.kinds.size(); ++k)
        for (std::size_t r = 0; r < cfg.rates.size(); ++r)
            for (int s = 0; s < cfg.seeds; ++s)
                trials.push_back(Trial{k, r, s});

    // Fan out across threads; every trial owns its simulator, and
    // results land at their own index, so the aggregation below is
    // independent of the thread count.
    std::vector<TrialResult> results(trials.size());
    parallelFor(trials.size(),
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                        results[i] = runTrial(cfg, trials[i]);
                });

    FaultCampaignResult out;
    out.cfg = cfg;
    for (std::size_t k = 0; k < cfg.kinds.size(); ++k) {
        for (std::size_t r = 0; r < cfg.rates.size(); ++r) {
            FaultCampaignPoint p{};
            p.kind = cfg.kinds[k];
            p.rate = cfg.rates[r];
            p.trials = cfg.seeds;
            const std::size_t base =
                (k * cfg.rates.size() + r) *
                static_cast<std::size_t>(cfg.seeds);
            int exact = 0;
            for (int s = 0; s < cfg.seeds; ++s) {
                const TrialResult &t =
                    results[base + static_cast<std::size_t>(s)];
                exact += t.exact ? 1 : 0;
                p.mean_count_err += t.count_err;
                p.mean_violations += t.violations;
                p.mean_dropped += t.dropped;
                p.mean_inserted += t.inserted;
                p.mean_recovered += t.recovered;
                p.mean_energy_j += t.energy_j;
            }
            const double n = cfg.seeds;
            p.accuracy = exact / n;
            p.mean_count_err /= n;
            p.mean_violations /= n;
            p.mean_dropped /= n;
            p.mean_inserted /= n;
            p.mean_recovered /= n;
            p.mean_energy_j /= n;
            out.points.push_back(p);
        }
    }
    return out;
}

bool
accuracyMonotone(const FaultCampaignResult &result)
{
    const std::size_t n_rates = result.cfg.rates.size();
    for (std::size_t k = 0; k < result.cfg.kinds.size(); ++k) {
        for (std::size_t r = 1; r < n_rates; ++r) {
            const auto &prev = result.points[k * n_rates + r - 1];
            const auto &cur = result.points[k * n_rates + r];
            if (cur.accuracy > prev.accuracy + 1e-12)
                return false;
        }
    }
    return true;
}

std::string
campaignToJson(const FaultCampaignResult &result)
{
    JsonWriter w;
    w.field("workload", "npe_counter");
    w.field("campaign_seed", result.cfg.campaign_seed);
    w.field("seeds", result.cfg.seeds);
    w.field("num_sc", result.cfg.num_sc);
    w.field("pulses", result.cfg.pulses);
    w.field("jitter_scale_ticks", result.cfg.jitter_scale_ticks);
    w.beginArray("points");
    for (const FaultCampaignPoint &p : result.points) {
        w.beginObject();
        w.field("kind", sfq::faultKindName(p.kind));
        w.field("rate", p.rate);
        w.field("trials", p.trials);
        w.field("accuracy", p.accuracy);
        w.field("mean_count_err", p.mean_count_err);
        w.field("mean_violations", p.mean_violations);
        w.field("mean_dropped", p.mean_dropped);
        w.field("mean_inserted", p.mean_inserted);
        w.field("mean_recovered", p.mean_recovered);
        w.field("mean_energy_j", p.mean_energy_j);
        w.endObject();
    }
    w.endArray();
    return w.finish();
}

bool
writeCampaignJson(const FaultCampaignResult &result,
                  const std::string &path)
{
    return JsonWriter::writeFile(path, campaignToJson(result));
}

} // namespace sushi::perf
