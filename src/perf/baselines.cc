#include "perf/baselines.hh"

#include "fabric/resource_model.hh"
#include "fabric/timing_model.hh"
#include "perf/power_model.hh"

namespace sushi::perf {

const Platform &
trueNorth()
{
    // Merolla et al. 2014 / Cassidy et al. 2014; values as quoted in
    // the paper's Table 4.
    static const Platform p{
        "TrueNorth", "SNN",  "SRAM", "CMOS, 28 nm", "Async",
        430.0,       145.0,  58.0,   400.0,
    };
    return p;
}

const Platform &
tianjic()
{
    // Pei et al. 2019; values as quoted in the paper's Table 4
    // (GSOPS not reported; efficiency 649 GSOPS/W at 950 mW).
    static const Platform p{
        "Tianjic", "Hybrid", "SRAM", "CMOS, 28 nm", "300 MHz",
        14.44,     950.0,    0.0,    649.0,
    };
    return p;
}

Platform
sushiPlatform()
{
    const fabric::DesignPoint d = fabric::designPoint(16);
    const fabric::MeshConfig cfg = fabric::scalingMeshConfig(16);
    const double gsops = fabric::peakGsops(cfg);
    const double power = totalPowerMw(d.total_jjs, gsops);
    return Platform{
        "SUSHI", "SSNN", "-", "RSFQ, 2 um", "Async",
        d.area_mm2, power, gsops, gsops / (power * 1e-3),
    };
}

} // namespace sushi::perf
