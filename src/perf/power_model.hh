/**
 * @file
 * Power and efficiency model of SUSHI designs (paper Figs. 20/21,
 * Table 4).
 *
 * RSFQ power is dominated by the static bias current through every
 * JJ; the dynamic (switching) term is orders of magnitude smaller.
 * The bias power per JJ is calibrated so the 16x16 design draws the
 * paper's 41.87 mW (Table 4). Cooling cost is excluded, as in the
 * paper ("we evaluate the power of SUSHI without considering the
 * cooling costs").
 */

#ifndef SUSHI_PERF_POWER_MODEL_HH
#define SUSHI_PERF_POWER_MODEL_HH

#include <vector>

namespace sushi::perf {

/** Static bias power of a design with @p total_jjs junctions, mW. */
double staticPowerMw(long total_jjs);

/**
 * Dynamic switching power at @p gsops synaptic throughput, mW
 * (~30 JJ flips of ~2e-19 J per synaptic op).
 */
double dynamicPowerMw(double gsops);

/** Total power of a design, mW. */
double totalPowerMw(long total_jjs, double gsops);

/** One row of the Fig. 19/20/21 sweeps. */
struct ScalingPoint
{
    int npes;
    int n;
    long total_jjs;
    double gsops;              ///< Fig. 19
    double power_mw;           ///< Fig. 20
    double gsops_per_w;        ///< Fig. 21
    double transmission_share; ///< Sec. 6.3 analysis
};

/** The full 2..32-NPE sweep driving Figs. 19-21. */
std::vector<ScalingPoint> scalingSweep();

/**
 * Frames per second on the verification network (INPUT784-FC800-IF-
 * FC10-IF, T time steps) at the given sustained throughput.
 * The paper reports up to 2.61e5 FPS (Sec. 6.3).
 * @param gsops        sustained synaptic throughput
 * @param sops_per_frame synaptic operations one frame costs
 */
double framesPerSecond(double gsops, double sops_per_frame);

/**
 * Synaptic operations per frame for a 784-H-10 SSNN with T steps at
 * the given average spike rates (input rate for layer 1, hidden rate
 * for layer 2).
 */
double sopsPerFrame(int hidden, int t_steps, double input_rate,
                    double hidden_rate);

} // namespace sushi::perf

#endif // SUSHI_PERF_POWER_MODEL_HH
