#include "perf/power_model.hh"

#include "common/logging.hh"
#include "fabric/resource_model.hh"
#include "fabric/timing_model.hh"
#include "sfq/cell_params.hh"

namespace sushi::perf {

double
staticPowerMw(long total_jjs)
{
    return sfq::biasPowerPerJj() * static_cast<double>(total_jjs) *
           1e3;
}

double
dynamicPowerMw(double gsops)
{
    // ~30 JJ switching events of ~2e-19 J per synaptic operation.
    const double joules_per_op = 30.0 * 2.0e-19;
    return gsops * 1e9 * joules_per_op * 1e3;
}

double
totalPowerMw(long total_jjs, double gsops)
{
    return staticPowerMw(total_jjs) + dynamicPowerMw(gsops);
}

std::vector<ScalingPoint>
scalingSweep()
{
    std::vector<ScalingPoint> points;
    for (const fabric::DesignPoint &d : fabric::fig13Sweep()) {
        const fabric::MeshConfig cfg =
            fabric::scalingMeshConfig(d.n);
        ScalingPoint p;
        p.npes = d.npes;
        p.n = d.n;
        p.total_jjs = d.total_jjs;
        p.gsops = fabric::peakGsops(cfg);
        p.power_mw = totalPowerMw(d.total_jjs, p.gsops);
        p.gsops_per_w = p.gsops / (p.power_mw * 1e-3);
        p.transmission_share = fabric::transmissionShare(cfg);
        points.push_back(p);
    }
    return points;
}

double
framesPerSecond(double gsops, double sops_per_frame)
{
    sushi_assert(sops_per_frame > 0.0);
    return gsops * 1e9 / sops_per_frame;
}

double
sopsPerFrame(int hidden, int t_steps, double input_rate,
             double hidden_rate)
{
    const double layer1 = 784.0 * hidden * input_rate;
    const double layer2 = hidden * 10.0 * hidden_rate;
    return (layer1 + layer2) * t_steps;
}

} // namespace sushi::perf
