/**
 * @file
 * Monte-Carlo fault-injection campaigns (the quantitative side of the
 * paper's Sec. 6.2 verification story).
 *
 * A campaign sweeps fault kinds and rates over many seeded trials of
 * a gate-level NPE counting workload, fanning the trials out across
 * CPU threads, and reports per-(kind, rate) accuracy — the fraction
 * of trials whose gate-level result is pulse-exact against the ideal
 * behavioural counter — together with violation, fault, and energy
 * statistics. The JSON emitter is byte-deterministic in the campaign
 * seed so curves can be regression-diffed.
 */

#ifndef SUSHI_PERF_FAULT_CAMPAIGN_HH
#define SUSHI_PERF_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sfq/fault_model.hh"

namespace sushi::perf {

/** Sweep configuration. */
struct FaultCampaignConfig
{
    /** Fault kinds to sweep (delivery faults make the most sense:
     *  drop, spurious, jitter). */
    std::vector<sfq::FaultKind> kinds = {
        sfq::FaultKind::PulseDrop,
        sfq::FaultKind::SpuriousPulse,
        sfq::FaultKind::TimingJitter,
    };

    /** Fault intensities. For drop/spurious this is the
     *  per-delivery probability; for jitter the delay stddev is
     *  rate * jitter_scale_ticks. */
    std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2, 1e-1};

    /** Seeded trials per (kind, rate) point. */
    int seeds = 8;

    /** Master seed: every trial seed derives from it. */
    std::uint64_t campaign_seed = 1;

    /** NPE chain length of the gate-level workload. */
    int num_sc = 5;

    /** Input pulses per trial. */
    int pulses = 64;

    /** Jitter stddev in ticks at rate == 1 (1000 ticks = 1 ps). */
    double jitter_scale_ticks = 20000.0;
};

/** Aggregated result of one (kind, rate) sweep point. */
struct FaultCampaignPoint
{
    sfq::FaultKind kind;
    double rate;
    int trials;
    double accuracy;        ///< fraction of pulse-exact trials
    double mean_count_err;  ///< mean |counter - ideal|
    double mean_violations; ///< timing violations per trial
    double mean_dropped;    ///< lost pulses per trial
    double mean_inserted;   ///< spurious pulses per trial
    double mean_recovered;  ///< Recover-policy drops per trial
    double mean_energy_j;   ///< switching energy per trial
};

/** A completed campaign. */
struct FaultCampaignResult
{
    FaultCampaignConfig cfg;
    std::vector<FaultCampaignPoint> points; ///< kind-major order
};

/**
 * Run the campaign, fanning trials across hardware threads via
 * common/parallel. Deterministic in cfg.campaign_seed regardless of
 * thread count.
 */
FaultCampaignResult runFaultCampaign(const FaultCampaignConfig &cfg);

/**
 * True if, for every kind, accuracy is non-increasing as the rate
 * grows — the graceful-degradation shape the curves must have.
 */
bool accuracyMonotone(const FaultCampaignResult &result);

/** Serialize as JSON (byte-deterministic for equal results). */
std::string campaignToJson(const FaultCampaignResult &result);

/** Write campaignToJson to @p path. @return false on I/O error. */
bool writeCampaignJson(const FaultCampaignResult &result,
                       const std::string &path);

} // namespace sushi::perf

#endif // SUSHI_PERF_FAULT_CAMPAIGN_HH
