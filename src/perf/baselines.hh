/**
 * @file
 * Published baseline datapoints used in the paper's Table 4 and
 * Figs. 19/21: TrueNorth [Merolla et al., Science 2014; Cassidy et
 * al., SC 2014] and Tianjic [Pei et al., Nature 2019]. The paper
 * compares against these published numbers (not re-measured
 * silicon); we carry the same values.
 */

#ifndef SUSHI_PERF_BASELINES_HH
#define SUSHI_PERF_BASELINES_HH

#include <string>

namespace sushi::perf {

/** One comparison platform (a row of Table 4). */
struct Platform
{
    std::string name;
    std::string model;      ///< "SNN", "Hybrid", "SSNN"
    std::string memory;     ///< on-chip memory technology
    std::string technology; ///< process
    std::string clock;      ///< "Async" or MHz
    double area_mm2;
    double power_mw;        ///< representative power
    double gsops;           ///< peak GSOPS (0 = not reported)
    double gsops_per_w;     ///< peak power efficiency
};

/** TrueNorth's published row. */
const Platform &trueNorth();

/** Tianjic's published row. */
const Platform &tianjic();

/** SUSHI's row computed from this repository's models. */
Platform sushiPlatform();

} // namespace sushi::perf

#endif // SUSHI_PERF_BASELINES_HH
