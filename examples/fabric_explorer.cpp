/**
 * @file
 * Fabric explorer: sweeps mesh sizes and prints the resource /
 * performance / power landscape a designer would use to pick a
 * SUSHI configuration for a given fabrication budget (paper
 * Sec. 4.3: the architecture scales to the available integration
 * level).
 *
 * Run: ./fabric_explorer [max_jjs]
 */

#include <cstdio>
#include <cstdlib>

#include "fabric/resource_model.hh"
#include "fabric/timing_model.hh"
#include "fabric/tree_network.hh"
#include "perf/power_model.hh"
#include "sfq/simulator.hh"

using namespace sushi;
using namespace sushi::fabric;

int
main(int argc, char **argv)
{
    // E.g. the Nb03 process supports ~1e4 JJs on a 5x5 mm die
    // (paper Sec. 5.3).
    const long budget =
        argc > 1 ? std::atol(argv[1]) : 100000;

    std::printf("=== SUSHI design-space sweep (JJ budget: %ld) "
                "===\n",
                budget);
    std::printf("%7s %6s %9s %9s %8s %9s %10s %6s\n", "mesh",
                "NPEs", "JJs", "area mm2", "GSOPS", "GSOPS/W",
                "trans.%", "fits");
    int best = 0;
    for (int n : {1, 2, 4, 8, 16}) {
        const DesignPoint p = designPoint(n);
        const MeshConfig cfg = scalingMeshConfig(n);
        const double gsops = peakGsops(cfg);
        const double power =
            perf::totalPowerMw(p.total_jjs, gsops);
        const bool fits = p.total_jjs <= budget;
        if (fits)
            best = n;
        std::printf("%4dx%-2d %6d %9ld %9.2f %8.1f %9.0f %9.1f %6s\n",
                    n, n, p.npes, p.total_jjs, p.area_mm2, gsops,
                    gsops / (power * 1e-3),
                    100.0 * transmissionShare(cfg),
                    fits ? "yes" : "no");
    }
    if (best > 0) {
        std::printf("\nlargest mesh within budget: %dx%d "
                    "(w_max=%d per synapse)\n",
                    best, best, wMaxForN(best));
    } else {
        std::printf("\nno mesh fits; consider the tree fabric:\n");
    }

    // Tree-fabric alternative at the same input count.
    sfq::Simulator sim;
    sfq::Netlist tnet(sim);
    TreeConfig tcfg;
    tcfg.leaves = best > 0 ? best : 4;
    TreeGate tree(tnet, tcfg);
    std::printf("tree fabric with %d leaves: %ld JJs "
                "(normalised weights only, Fig. 11 trade-off)\n",
                tcfg.leaves, tnet.resources().totalJjs());
    return 0;
}
