/**
 * @file
 * Chip datasheet: prints the complete specification of a SUSHI
 * configuration the way a chip brief would — cell inventory,
 * resources, timing, power, throughput, and the constraint table the
 * pulse encoder must honour.
 *
 * Run: ./chip_datasheet [N]   (mesh dimension, default 16)
 */

#include <cstdio>
#include <cstdlib>

#include "fabric/resource_model.hh"
#include "fabric/sync_baseline.hh"
#include "fabric/timing_model.hh"
#include "perf/power_model.hh"
#include "sfq/constraints.hh"
#include "sfq/simulator.hh"

using namespace sushi;
using namespace sushi::fabric;

int
main(int argc, char **argv)
{
    const int n = argc > 1 ? std::atoi(argv[1]) : 16;
    if (n < 1 || n > 64) {
        std::fprintf(stderr, "mesh dimension must be 1..64\n");
        return 1;
    }

    const MeshConfig cfg = scalingMeshConfig(n);
    std::printf("================ SUSHI %dx%d datasheet "
                "================\n",
                n, n);
    std::printf("organisation: %d NPEs (%d SCs each, %llu neuron "
                "states), %ld synapses, w_max %d\n",
                cfg.numNpes(), cfg.sc_per_npe,
                static_cast<unsigned long long>(1ULL << cfg.sc_per_npe),
                cfg.numSynapses(), cfg.effectiveWMax());

    // Resources, from the real netlist.
    sfq::Simulator sim;
    sfq::Netlist net(sim);
    MeshGate mesh(net, cfg);
    const auto &r = net.resources();
    std::printf("\nresources\n");
    std::printf("  JJs:    %ld total (%ld logic / %ld wiring, "
                "%.1f%% wiring)\n",
                r.totalJjs(), r.logic_jjs, r.wiring_jjs,
                100.0 * r.wiringFraction());
    std::printf("  area:   %.2f mm^2\n",
                designAreaMm2(r.totalJjs(), n));
    std::printf("  cells:  ");
    for (int k = 0; k < static_cast<int>(sfq::CellKind::kNumKinds);
         ++k) {
        const long count =
            r.cells_by_kind[static_cast<std::size_t>(k)];
        if (count)
            std::printf("%s:%ld ",
                        sfq::cellKindName(
                            static_cast<sfq::CellKind>(k)),
                        count);
    }
    std::printf("\n");

    // Timing and throughput.
    std::printf("\ntiming\n");
    std::printf("  per-pulse logic delay:        %.1f ps\n",
                synapseLogicDelayPs(cfg));
    std::printf("  per-pulse transmission delay: %.1f ps (%.1f%% "
                "share)\n",
                transmissionDelayPs(n),
                100.0 * transmissionShare(cfg));
    std::printf("  safe encoder pulse spacing:   %.2f ps\n",
                ticksToPs(sfq::safePulseSpacing()));

    const double gsops = peakGsops(cfg);
    const double power = perf::totalPowerMw(r.totalJjs(), gsops);
    std::printf("\nperformance\n");
    std::printf("  peak throughput: %.1f GSOPS\n", gsops);
    std::printf("  power:           %.2f mW (%.2f static + %.4f "
                "dynamic)\n",
                power, perf::staticPowerMw(r.totalJjs()),
                perf::dynamicPowerMw(gsops));
    std::printf("  efficiency:      %.0f GSOPS/W\n",
                gsops / (power * 1e-3));

    // What the asynchronous design saved (Sec. 3A).
    const SyncDesign sync = synchronousMesh(n);
    std::printf("\nvs a synchronous implementation of the same "
                "logic\n");
    std::printf("  sync total: %ld JJs (%.1f%% wiring); async saves "
                "%.1f%%\n",
                sync.totalJjs(), 100.0 * sync.wiringFraction(),
                100.0 *
                    static_cast<double>(sync.totalJjs() -
                                        r.totalJjs()) /
                    static_cast<double>(sync.totalJjs()));

    std::printf("\ninput timing constraints (Table 1)\n");
    for (const auto &row : sfq::constraintTable())
        std::printf("  %-6s %-12s %6.2f ps\n", row.cell.c_str(),
                    row.rule.c_str(), row.min_ps);
    return 0;
}
