/**
 * @file
 * End-to-end SSNN inference through the batched multi-chip engine:
 * the full Fig. 12 workflow on the synthetic digit task, served the
 * way a production deployment would run it.
 *
 *   train (binarization-aware, stateless)  ->  XNOR binarize  ->
 *   bit-slice compile ONCE (shared compiled-model cache)  ->
 *   shard the test set across SushiChip replicas  ->  merge
 *   deterministic per-sample results and statistics.
 *
 * Run: ./digit_inference
 */

#include <cstdio>

#include "data/synth_digits.hh"
#include "engine/inference_engine.hh"
#include "snn/train.hh"

using namespace sushi;

int
main()
{
    // Data: procedurally generated 28x28 digits.
    auto all = data::synthDigits(3000, 42);
    auto [test, train] = data::split(all, 300);
    std::printf("dataset: %zu train / %zu test synthetic digits\n",
                train.size(), test.size());

    // Train a small SSNN exactly as the paper does: T=5 steps,
    // threshold 1.0, adam lr 1e-3, Poisson encoding, XNOR-aware.
    snn::SnnConfig cfg;
    cfg.hidden = 96;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 7);
    snn::TrainConfig tc;
    tc.epochs = 2;
    snn::Trainer(mlp, tc).fit(train.images, train.labels);

    // Binarize and compile onto the 16x16-mesh chip — once, through
    // the shared cache; every replica runs the same immutable
    // artifact.
    auto bin = snn::BinarySnn::fromFloat(mlp);
    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;
    auto model = engine::ModelCache::shared().get(bin, chip_cfg);
    const auto &compiled = model->compiled();
    std::printf("compiled: %d input slices x %d output groups "
                "(layer 0), %ld reload events per step\n",
                compiled.layers[0].slices.numInBlocks(),
                compiled.layers[0].slices.numOutBlocks(),
                compiled.totalReloads());
    std::printf("chip budget: %ld of %ld JJs (%.1f%%), "
                "%.2f of %.2f mm^2 (%.1f%%), %ld disabled neurons\n",
                compiled.budget.totalJjs(),
                compiled.budget.budget.jj_cap,
                100.0 * compiled.budget.jjUtilisation(),
                compiled.budget.totalAreaMm2(),
                compiled.budget.budget.area_cap_mm2,
                100.0 * compiled.budget.areaUtilisation(),
                compiled.disabled_count);

    // Encode the test set (per-sample deterministic streams) and run
    // it through a pool of chip replicas.
    const auto samples =
        engine::encodeSamples(test.images, cfg.t_steps, 99);
    engine::EngineConfig ecfg;
    ecfg.replicas = 4;
    engine::InferenceEngine eng(model, ecfg);
    const auto run = eng.run(samples);

    std::size_t hits = 0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (run.samples[i].prediction == test.labels[i])
            ++hits;
        if (i < 3) { // Fig. 16(d)-style readout
            const auto &counts = run.samples[i].counts;
            std::printf("sample %zu (true %d): ", i, test.labels[i]);
            for (std::size_t c = 0; c < counts.size(); ++c)
                std::printf("%d%s", counts[c],
                            c + 1 < counts.size() ? "," : "");
            std::printf(" -> predict %d\n",
                        run.samples[i].prediction);
        }
    }
    std::printf("chip accuracy: %.2f%% over %zu samples\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(samples.size()),
                samples.size());

    const auto &st = run.merged;
    std::printf("merged stats: %.3g synaptic ops, est. %.3g us of "
                "chip time, %.3g nJ dynamic energy\n",
                static_cast<double>(st.synaptic_ops),
                st.est_time_ps * 1e-6, st.dynamic_energy_j * 1e9);
    std::printf("engine: %d replicas (%d active), %.2f ms host "
                "wall, modelled batch makespan %.3g us\n",
                eng.replicas(), run.active_replicas,
                run.wall_seconds * 1e3,
                run.modeledMakespanPs() * 1e-6);
    return 0;
}
