/**
 * @file
 * End-to-end SSNN inference: the full Fig. 12 workflow on the
 * synthetic digit task.
 *
 *   train (binarization-aware, stateless)  ->  XNOR binarize  ->
 *   bit-slice compile for a 16x16 chip     ->  run on the chip
 *   model -> decode labels from output pulse streams.
 *
 * Run: ./digit_inference
 */

#include <algorithm>
#include <cstdio>

#include "chip/sushi_chip.hh"
#include "data/synth_digits.hh"
#include "snn/train.hh"

using namespace sushi;

int
main()
{
    // Data: procedurally generated 28x28 digits.
    auto all = data::synthDigits(3000, 42);
    auto [test, train] = data::split(all, 300);
    std::printf("dataset: %zu train / %zu test synthetic digits\n",
                train.size(), test.size());

    // Train a small SSNN exactly as the paper does: T=5 steps,
    // threshold 1.0, adam lr 1e-3, Poisson encoding, XNOR-aware.
    snn::SnnConfig cfg;
    cfg.hidden = 96;
    cfg.t_steps = 5;
    cfg.stateless = true;
    snn::SnnMlp mlp(cfg, 7);
    snn::TrainConfig tc;
    tc.epochs = 2;
    snn::Trainer(mlp, tc).fit(train.images, train.labels);

    // Binarize and compile onto the 16x16-mesh chip.
    auto bin = snn::BinarySnn::fromFloat(mlp);
    compiler::ChipConfig chip_cfg;
    chip_cfg.n = 16;
    chip_cfg.sc_per_npe = 10;
    auto compiled = compiler::compileNetwork(bin, chip_cfg);
    std::printf("compiled: %d input slices x %d output groups "
                "(layer 0), %ld reload events per step\n",
                compiled.layers[0].slices.numInBlocks(),
                compiled.layers[0].slices.numOutBlocks(),
                compiled.totalReloads());

    // Run the chip on the test set.
    chip::SushiChip chip(chip_cfg);
    snn::PoissonEncoder enc(99);
    std::size_t hits = 0;
    int shown = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        std::vector<float> pix(test.images.row(i),
                               test.images.row(i) + 784);
        snn::Tensor fr = enc.encode(pix, cfg.t_steps);
        std::vector<std::vector<std::uint8_t>> frames;
        for (int t = 0; t < cfg.t_steps; ++t) {
            std::vector<std::uint8_t> f(784);
            for (std::size_t d = 0; d < 784; ++d)
                f[d] = fr.at(static_cast<std::size_t>(t), d) > 0.5f;
            frames.push_back(std::move(f));
        }
        const auto counts = chip.inferCounts(compiled, frames);
        const int pred = static_cast<int>(
            std::max_element(counts.begin(), counts.end()) -
            counts.begin());
        hits += pred == test.labels[i] ? 1 : 0;
        if (shown < 3) { // Fig. 16(d)-style readout
            std::printf("sample %zu (true %d): ", i, test.labels[i]);
            for (std::size_t c = 0; c < counts.size(); ++c)
                std::printf("%d%s", counts[c],
                            c + 1 < counts.size() ? "," : "");
            std::printf(" -> predict %d\n", pred);
            ++shown;
        }
    }
    std::printf("chip accuracy: %.2f%% over %zu samples\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(test.size()),
                test.size());
    const auto &st = chip.stats();
    std::printf("chip stats: %.3g synaptic ops, est. %.3g us of "
                "chip time, %.3g nJ dynamic energy\n",
                static_cast<double>(st.synaptic_ops),
                st.est_time_ps * 1e-6, st.dynamic_energy_j * 1e9);
    return 0;
}
