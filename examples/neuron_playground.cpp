/**
 * @file
 * Neuron playground: drives the multi-phase biological neuron model
 * of paper Fig. 6/7 through an action potential and shows how its
 * linearised state maps onto the NPE's counter (Sec. 4.1.2), plus
 * the state-budget claim (~500 states suffice; a 10-SC NPE offers
 * 1024).
 *
 * Run: ./neuron_playground
 */

#include <cstdio>

#include "npe/neuron_fsm.hh"
#include "npe/npe.hh"

using namespace sushi::npe;

int
main()
{
    NeuronFsm neuron(/*threshold=*/4, /*rising=*/3, /*falling=*/3);
    std::printf("Fig. 6/7 neuron: %d states "
                "(b0..b4, r0..r3, f0..f3)\n",
                neuron.numStates());

    // A failed initiation, then a successful action potential.
    struct Step
    {
        Stimulus s;
        const char *what;
    };
    const Step script[] = {
        {Stimulus::Spike, "input spike"},
        {Stimulus::Spike, "input spike"},
        {Stimulus::Time, "time (decay: failed initiation)"},
        {Stimulus::Spike, "input spike"},
        {Stimulus::Spike, "input spike"},
        {Stimulus::Spike, "input spike"},
        {Stimulus::Spike, "input spike (at threshold)"},
        {Stimulus::Time, "time (launch rising phase)"},
        {Stimulus::Time, "time"},
        {Stimulus::Time, "time"},
        {Stimulus::Time, "time"},
        {Stimulus::Time, "time (falling)"},
        {Stimulus::Time, "time"},
        {Stimulus::Time, "time"},
        {Stimulus::Time, "time"},
        {Stimulus::Time, "time (back to rest)"},
    };

    std::printf("%-38s %6s %7s %6s\n", "stimulus", "state",
                "linear", "spike");
    for (const Step &step : script) {
        const bool spiked = neuron.stimulate(step.s);
        std::printf("%-38s %6s %7d %6s\n", step.what,
                    neuron.stateName().c_str(), neuron.linearState(),
                    spiked ? "SPIKE" : "");
    }
    std::printf("spikes sent: %ld\n", neuron.spikesSent());

    // The Sec. 4.1.2 budget claim, checked against the NPE.
    Npe npe(10);
    const int biological =
        neuronStateBudget(255, 128, 112); // a rich neuron
    std::printf("\nstate budget: a (255,128,112) neuron needs %d "
                "states; ~500 are adequate (Sec. 4.1.2); the 10-SC "
                "NPE provides %llu\n",
                biological,
                static_cast<unsigned long long>(npe.numStates()));
    return 0;
}
