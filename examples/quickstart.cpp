/**
 * @file
 * Quickstart: the SUSHI public API in five minutes.
 *
 * Builds the fabricated-chip configuration (a 1x1 mesh: one input
 * NPE, one output NPE) at gate level, programs an integrate-and-fire
 * threshold, feeds an SFQ pulse train, and reads the result back
 * through the SFQ/DC driver — the same workflow as paper Fig. 16.
 *
 * Run: ./quickstart
 */

#include <cstdio>

#include "npe/npe.hh"
#include "sfq/constraints.hh"
#include "sfq/netlist.hh"
#include "sfq/simulator.hh"

using namespace sushi;

int
main()
{
    // 1. A simulator owns time; a netlist owns cells.
    sfq::Simulator sim;
    sfq::Netlist net(sim);

    // 2. A 4-SC NPE: a 16-state asynchronous ripple counter.
    npe::NpeGate npe(net, "npe", 4);
    std::printf("built an NPE with %d state controllers "
                "(%ld logic JJs in the netlist)\n",
                npe.numSc(), net.resources().totalJjs());

    // 3. Program an IF threshold of 5: rst, write the preload
    //    2^4 - 5 = 11 (0b1011), then arm the excitatory (set1)
    //    direction — the Sec. 5.2 control ordering.
    const Tick gap = sfq::safePulseSpacing();
    Tick t = gap;
    npe.injectRst(t);
    t += gap;
    for (int bit : {0, 1, 3}) { // 0b1011 = 11
        npe.injectWrite(bit, t);
        t += gap;
    }
    npe.injectSet1(t);
    t += gap;

    // 4. Feed 7 input pulses: the 5th crosses the threshold.
    for (int i = 0; i < 7; ++i) {
        npe.injectIn(t);
        t += gap;
    }
    sim.run();

    // 5. Read the results.
    std::printf("input pulses: 7, threshold: 5\n");
    std::printf("spikes out:   %zu (at t=%.1f ps)\n",
                npe.outSink().count(),
                ticksToPs(npe.outSink().pulsesSeen().front()));
    std::printf("counter now:  %llu (the 2 pulses past threshold)\n",
                static_cast<unsigned long long>(npe.value()));
    std::printf("energy:       %.3g pJ dynamic, %llu pulses moved\n",
                sim.switchEnergy() * 1e12,
                static_cast<unsigned long long>(sim.pulses()));
    std::printf("timing violations: %llu\n",
                static_cast<unsigned long long>(sim.violations()));
    return 0;
}
